// Queueing & timing substrate tests (DESIGN §14):
//
//   * BlockingQueue::pop_all / push_bounded direct units (the locked
//     backend's batch-drain and backpressure contracts).
//   * MpscChain: empty-transition reporting, FIFO order, seeded
//     multi-producer stress (per-producer order must survive the reversal).
//   * Mailbox: wakeup coalescing (a burst pays at most one notify),
//     closed-state linearization, locked-backend parity.
//   * TimerWheel: one-shot/periodic fire, never-early rounding, drift
//     bounds, cancellation, cascading across wheel levels.
//   * The E14 zero-alloc gate: same-node raise→object-handler performs ZERO
//     heap allocations in steady state (pooled task nodes, borrowed
//     EventBlock, no marshalling).  This TU — and only this TU — includes
//     alloc_probe.hpp, which replaces global operator new/delete for the
//     whole test binary with counting versions.
//
// Seeded stress: DOCT_SUBSTRATE_SEED=<n> reproduces a failing interleaving.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_probe.hpp"
#include "common/mpsc_queue.hpp"
#include "common/queue.hpp"
#include "common/timer_wheel.hpp"
#include "events/event_system.hpp"
#include "runtime/runtime.hpp"

namespace doct::common {
namespace {

using namespace std::chrono_literals;

std::uint64_t suite_seed() {
  if (const char* env = std::getenv("DOCT_SUBSTRATE_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xD0C7'5EEDULL;
}

// ---------------------------------------------------------------------------
// BlockingQueue direct units (locked backend)

TEST(BlockingQueueDirect, PopAllDrainsWholeBacklogFifo) {
  BlockingQueue<int> q;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 5u);

  const std::deque<int> batch = q.pop_all();
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(batch[static_cast<size_t>(i)], i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueueDirect, PopAllReturnsQueuedItemsAfterClose) {
  BlockingQueue<int> q;
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();

  // close() never drops admitted items: the first drain returns them, the
  // second reports closed-and-drained (empty deque = consumer exits).
  const std::deque<int> first = q.pop_all();
  EXPECT_EQ(first.size(), 2u);
  const std::deque<int> second = q.pop_all();
  EXPECT_TRUE(second.empty());
}

TEST(BlockingQueueDirect, PopAllBlocksUntilProducerArrives) {
  BlockingQueue<int> q;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const std::deque<int> batch = q.pop_all();
    if (batch.size() == 1 && batch.front() == 42) got.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(q.push(42));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(BlockingQueueDirect, PushBoundedEnforcesCapacity) {
  BlockingQueue<int> q;
  using PushResult = BlockingQueue<int>::PushResult;

  EXPECT_EQ(q.push_bounded(1, 2), PushResult::kOk);
  EXPECT_EQ(q.push_bounded(2, 2), PushResult::kOk);
  EXPECT_EQ(q.push_bounded(3, 2), PushResult::kFull);
  EXPECT_EQ(q.size(), 2u);

  // Draining one slot readmits.
  ASSERT_TRUE(q.try_pop().has_value());
  EXPECT_EQ(q.push_bounded(3, 2), PushResult::kOk);

  q.close();
  EXPECT_EQ(q.push_bounded(4, 2), PushResult::kClosed);
}

TEST(BlockingQueueDirect, PushBoundedCapacityZeroIsUnbounded) {
  BlockingQueue<int> q;
  using PushResult = BlockingQueue<int>::PushResult;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(q.push_bounded(i, 0), PushResult::kOk);
  }
  EXPECT_EQ(q.size(), 1000u);
}

// ---------------------------------------------------------------------------
// MpscChain

struct ChainNode : MpscNode {
  int producer = 0;
  int seq = 0;
};

TEST(MpscChain, PushReportsEmptyToNonEmptyTransition) {
  MpscChain chain;
  ChainNode a, b;
  EXPECT_TRUE(chain.push(&a));   // empty → non-empty: must signal
  EXPECT_FALSE(chain.push(&b));  // already non-empty: coalesces
  EXPECT_FALSE(chain.empty());

  MpscNode* fifo = chain.take_all();
  EXPECT_EQ(fifo, &a);
  EXPECT_TRUE(chain.empty());

  ChainNode c;
  EXPECT_TRUE(chain.push(&c));  // transition reported again after a drain
  (void)chain.take_all();
}

TEST(MpscChain, TakeAllYieldsFifoOrder) {
  MpscChain chain;
  std::vector<ChainNode> nodes(10);
  for (int i = 0; i < 10; ++i) {
    nodes[static_cast<size_t>(i)].seq = i;
    chain.push(&nodes[static_cast<size_t>(i)]);
  }
  int expect = 0;
  for (MpscNode* node = chain.take_all(); node != nullptr; node = node->next) {
    EXPECT_EQ(static_cast<ChainNode*>(node)->seq, expect++);
  }
  EXPECT_EQ(expect, 10);
}

TEST(MpscChain, SeededMultiProducerStressPreservesPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  const std::uint64_t seed = suite_seed();
  std::fprintf(stderr, "[substrate] DOCT_SUBSTRATE_SEED=%llu\n",
               static_cast<unsigned long long>(seed));

  MpscChain chain;
  // Node storage is pre-sized per producer so intrusive pointers stay stable.
  std::vector<std::vector<ChainNode>> nodes(kProducers);
  for (auto& v : nodes) v.resize(kPerProducer);

  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::mt19937_64 rng(seed + static_cast<std::uint64_t>(p));
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) {
        ChainNode& node = nodes[static_cast<size_t>(p)][static_cast<size_t>(i)];
        node.producer = p;
        node.seq = i;
        chain.push(&node);
        // Seeded jitter varies the interleaving between runs of the suite
        // while keeping any one run reproducible.
        if ((rng() & 0x3F) == 0) std::this_thread::yield();
      }
    });
  }

  go.store(true, std::memory_order_release);
  std::vector<int> next_seq(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    for (MpscNode* node = chain.take_all(); node != nullptr;
         node = node->next) {
      const auto* typed = static_cast<const ChainNode*>(node);
      // take_all reverses the Treiber stack back to FIFO, so each producer's
      // pushes must come out in its push order.
      ASSERT_EQ(typed->seq, next_seq[static_cast<size_t>(typed->producer)]);
      ++next_seq[static_cast<size_t>(typed->producer)];
      ++received;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(chain.empty());
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[static_cast<size_t>(p)], kPerProducer);
  }
}

// ---------------------------------------------------------------------------
// Mailbox

TEST(Mailbox, BurstPaysAtMostOneWakeup) {
  Mailbox<int> box(QueueBackend::kLockfree);
  constexpr int kBurst = 1000;
  // Coalescing happens at two layers.  The chain reports only the
  // empty→non-empty transition, so of the whole burst exactly ONE push
  // signals the gate — and with no consumer draining, that one signal pays
  // the one and only notify.
  for (int i = 0; i < kBurst; ++i) ASSERT_TRUE(box.push(i));
  EXPECT_EQ(box.signals(), 1u);
  EXPECT_EQ(box.wakeups(), 1u);

  const std::deque<int> batch = box.pop_all();
  ASSERT_EQ(batch.size(), static_cast<size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) EXPECT_EQ(batch[static_cast<size_t>(i)], i);
}

TEST(Mailbox, WakeupsNeverExceedSignals) {
  Mailbox<int> box(QueueBackend::kLockfree);
  constexpr int kItems = 20000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) box.push(i);
    box.close();
  });
  int received = 0;
  int expect = 0;
  for (;;) {
    const std::deque<int> batch = box.pop_all();
    if (batch.empty()) break;  // closed-and-drained
    for (const int v : batch) {
      ASSERT_EQ(v, expect++);  // single producer: strict FIFO end to end
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(received, kItems);
  // Coalescing invariants: at least one wakeup moved data; notifies paid
  // never exceed gate signals; and gate signals never exceed pushes (only
  // empty→non-empty transition pushes signal at all).
  EXPECT_GE(box.wakeups(), 1u);
  EXPECT_LE(box.wakeups(), box.signals());
  EXPECT_GE(box.signals(), 1u);
  EXPECT_LE(box.signals(), static_cast<std::uint64_t>(kItems));
}

TEST(Mailbox, ClosedContractNoThirdOutcome) {
  Mailbox<int> box(QueueBackend::kLockfree);
  using PushResult = Mailbox<int>::PushResult;
  ASSERT_EQ(box.push_bounded(1, 0), PushResult::kOk);
  ASSERT_EQ(box.push_bounded(2, 0), PushResult::kOk);
  box.close();
  EXPECT_TRUE(box.closed());
  // Post-close pushes are refused and dropped by the caller...
  EXPECT_EQ(box.push_bounded(3, 0), PushResult::kClosed);
  EXPECT_FALSE(box.push(4));
  // ...and every admitted item is still retrievable by the post-close drain.
  const std::deque<int> batch = box.pop_all();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 1);
  EXPECT_EQ(batch[1], 2);
  EXPECT_TRUE(box.pop_all().empty());
}

TEST(Mailbox, BoundedPushShedsWhenFull) {
  Mailbox<int> box(QueueBackend::kLockfree);
  using PushResult = Mailbox<int>::PushResult;
  EXPECT_EQ(box.push_bounded(1, 2), PushResult::kOk);
  EXPECT_EQ(box.push_bounded(2, 2), PushResult::kOk);
  EXPECT_EQ(box.push_bounded(3, 2), PushResult::kFull);
  EXPECT_EQ(box.size(), 2u);
  const std::deque<int> batch = box.pop_all();
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(box.push_bounded(3, 2), PushResult::kOk);
}

TEST(Mailbox, LockedBackendParity) {
  Mailbox<int> box(QueueBackend::kLocked);
  EXPECT_EQ(box.backend(), QueueBackend::kLocked);
  ASSERT_TRUE(box.push(7));
  ASSERT_TRUE(box.push(8));
  EXPECT_EQ(box.size(), 2u);
  const std::deque<int> batch = box.pop_all();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 7);
  EXPECT_EQ(batch[1], 8);
  box.close();
  EXPECT_FALSE(box.push(9));
  EXPECT_TRUE(box.pop_all().empty());
  // The locked backend has no gate; instrumentation reports zero.
  EXPECT_EQ(box.wakeups(), 0u);
  EXPECT_EQ(box.signals(), 0u);
}

TEST(Mailbox, MultiProducerStressKeepsPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 4000;
  Mailbox<std::pair<int, int>> box(QueueBackend::kLockfree);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) box.push({p, i});
    });
  }

  std::vector<int> next_seq(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    const std::deque<std::pair<int, int>> batch = box.pop_all();
    for (const auto& [producer, seq] : batch) {
      ASSERT_EQ(seq, next_seq[static_cast<size_t>(producer)]);
      ++next_seq[static_cast<size_t>(producer)];
      ++received;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(box.size(), 0u);
}

// ---------------------------------------------------------------------------
// TimerWheel

TEST(TimerWheelTest, OneShotFiresOnce) {
  TimerWheel wheel;
  std::atomic<int> fired{0};
  wheel.schedule(5ms, [&] { fired++; });
  for (int i = 0; i < 500 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(wheel.stats().fired, 1u);
  wheel.stop();
}

TEST(TimerWheelTest, NeverFiresEarlyAndDriftIsBounded) {
  TimerWheel wheel;
  constexpr auto kDelay = 20ms;
  const auto start = std::chrono::steady_clock::now();
  std::atomic<std::int64_t> fired_after_us{-1};
  wheel.schedule(kDelay, [&] {
    fired_after_us.store(std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count());
  });
  for (int i = 0; i < 2000 && fired_after_us.load() < 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(fired_after_us.load(), 0) << "timer never fired";
  // schedule() rounds delays UP to the next tick: a timer may fire late
  // (coarse 1ms ticks + scheduling noise) but never early.
  EXPECT_GE(fired_after_us.load(), 20000);
  // Drift bound is deliberately loose for loaded single-core CI boxes.
  EXPECT_LE(fired_after_us.load(), 20000 + 1000000);
  wheel.stop();
}

// Regression: expiry must anchor to real time, not the tick thread's
// progress pointer.  While the thread sleeps toward a far deadline its
// current tick lags the clock; a short timer armed mid-sleep used to get an
// already-past expiry and fire the instant the thread woke.
TEST(TimerWheelTest, ShortTimerArmedDuringFarSleepIsNotEarly) {
  TimerWheel wheel;
  wheel.schedule(10s, [] {});  // park the tick thread far in the future
  std::this_thread::sleep_for(50ms);
  std::atomic<std::int64_t> fired_after_us{-1};
  const auto start = std::chrono::steady_clock::now();
  wheel.schedule(20ms, [&] {
    fired_after_us.store(std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count());
  });
  for (int i = 0; i < 2000 && fired_after_us.load() < 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(fired_after_us.load(), 0) << "timer never fired";
  EXPECT_GE(fired_after_us.load(), 20000);
  wheel.stop();
}

TEST(TimerWheelTest, ZeroDelayFiresOnNextTick) {
  TimerWheel wheel;
  std::atomic<int> fired{0};
  wheel.schedule(Duration::zero(), [&] { fired++; });
  for (int i = 0; i < 500 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(fired.load(), 1);
  wheel.stop();
}

TEST(TimerWheelTest, CancelPreventsFire) {
  TimerWheel wheel;
  std::atomic<int> fired{0};
  const TimerId id = wheel.schedule(50ms, [&] { fired++; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // already gone
  EXPECT_FALSE(wheel.cancel(TimerId{999999}));
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(wheel.stats().cancelled, 1u);
  EXPECT_EQ(wheel.pending(), 0u);
  wheel.stop();
}

TEST(TimerWheelTest, LongDelayCascadesAcrossLevels) {
  TimerWheel wheel;
  std::atomic<int> fired{0};
  // 64 slots at 1ms: a 100ms delay lands beyond level 0 and must be
  // cascaded down at a level boundary before it can fire.
  wheel.schedule(100ms, [&] { fired++; });
  for (int i = 0; i < 3000 && fired.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(fired.load(), 1);
  EXPECT_GE(wheel.stats().cascaded, 1u);
  wheel.stop();
}

TEST(TimerWheelTest, PeriodicFiresRepeatedlyUntilCancelled) {
  TimerWheel wheel;
  std::atomic<int> fired{0};
  const TimerId id = wheel.schedule_periodic(5ms, [&] { fired++; });
  for (int i = 0; i < 2000 && fired.load() < 3; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(fired.load(), 3);
  EXPECT_TRUE(wheel.cancel(id));
  // cancel() does not wait for an in-flight callback; let one drain, then
  // the count must hold still.
  std::this_thread::sleep_for(20ms);
  const int after_cancel = fired.load();
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(fired.load(), after_cancel);
  wheel.stop();
}

TEST(TimerWheelTest, ManyTimersAllFire) {
  TimerWheel wheel;
  std::atomic<int> fired{0};
  constexpr int kTimers = 100;
  for (int i = 0; i < kTimers; ++i) {
    wheel.schedule(std::chrono::milliseconds(1 + (i % 30)), [&] { fired++; });
  }
  for (int i = 0; i < 2000 && fired.load() < kTimers; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(fired.load(), kTimers);
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(wheel.stats().scheduled, static_cast<std::uint64_t>(kTimers));
  wheel.stop();
}

TEST(TimerWheelTest, StopIsIdempotentAndDropsPending) {
  TimerWheel wheel;
  std::atomic<int> fired{0};
  wheel.schedule(10s, [&] { fired++; });
  wheel.stop();
  wheel.stop();
  EXPECT_EQ(fired.load(), 0);
}

// ---------------------------------------------------------------------------
// E14 zero-alloc gate: same-node raise → object handler, steady state.

TEST(ZeroAllocDelivery, SameNodeRaiseToHandlerAllocatesNothing) {
  if (queue_backend() == QueueBackend::kLocked) {
    GTEST_SKIP() << "zero-alloc gate is a lockfree-substrate property "
                    "(DOCT_QUEUE=locked ablation allocates in BlockingQueue)";
  }

  // The acceptance configuration: event-lane width 4, reservations on.
  runtime::ClusterConfig config;
  config.node.kernel.executor.workers = 4;
  config.node.kernel.executor.event.width = 4;
  config.node.kernel.executor.reservations = true;
  config.node.kernel.executor.event.capacity = 0;  // never shed mid-window
  runtime::Cluster cluster(1, config);
  auto& n0 = cluster.node(0);

  // Short names stay within SSO on the delivery path's string copies.
  const EventId ev = cluster.registry().register_event("E14");
  std::atomic<int> handled{0};
  constexpr int kObjects = 4;
  constexpr int kMeasure = 100;
  std::vector<ObjectId> oids;
  for (int i = 0; i < kObjects; ++i) {
    auto obj = std::make_shared<objects::PassiveObject>("e14");
    obj->define_entry(
        "on_e14",
        [&handled](objects::CallCtx& ctx) -> Result<objects::Payload> {
          const events::EventBlock block = events::EventBlock::from_ctx(ctx);
          if (block.event().value() != 0) handled++;
          return objects::Payload{};
        },
        objects::Visibility::kPrivate);
    obj->define_handler("E14", "on_e14");
    oids.push_back(n0.objects.add_object(obj));
  }

  const auto burst = [&](int rounds) {
    const int expect = handled.load() + rounds * kObjects;
    for (int r = 0; r < rounds; ++r) {
      for (const ObjectId oid : oids) {
        ASSERT_TRUE(n0.events.raise(ev, oid).is_ok());
      }
    }
    for (int i = 0; i < 5000 && handled.load() < expect; ++i) {
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_EQ(handled.load(), expect);
  };

  // Warm-up: populate the executor's pooled task nodes, the mailbox node
  // pools and any lazily-built tables with bursts of the measured shape.
  burst(kMeasure / kObjects);
  burst(kMeasure / kObjects);

  // Measurement window: no gtest assertions, no captures — only raises and
  // a spin-wait on the atomic.  Every allocation in the PROCESS is charged.
  const int target = handled.load() + kMeasure;
  alloc_probe_reset();
  for (int r = 0; r < kMeasure / kObjects; ++r) {
    for (const ObjectId oid : oids) {
      (void)n0.events.raise(ev, oid);
    }
  }
  while (handled.load() < target) std::this_thread::yield();
  const std::uint64_t allocs = alloc_probe_allocs();

  EXPECT_EQ(handled.load(), target);
  EXPECT_EQ(allocs, 0u)
      << "same-node raise→handler must not heap-allocate in steady state";
}

}  // namespace
}  // namespace doct::common
