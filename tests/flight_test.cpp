// Telemetry-plane unit tests: the flight-recorder ring and its dump
// formats, the Collector's prefix-splitting / rate conversion, the mini
// JSON reader, the bounded trace buffer + delta cursor, chunked monitor
// snapshot fetches, and the observer HELLO auto-peer reply path doct-top
// rides on.
//
// The flight recorder is a process singleton whose ring capacity is fixed at
// the FIRST configure — the first test pins it (kRing) and every later test
// works within that.  Each ctest entry is its own process, so nothing leaks
// into other binaries.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/demux.hpp"
#include "net/socket_transport.hpp"
#include "obs/collector.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/rpc.hpp"
#include "runtime/runtime.hpp"
#include "services/monitor/monitor.hpp"

namespace doct {
namespace {

using namespace std::chrono_literals;
using runtime::Cluster;
using runtime::ClusterConfig;

constexpr std::size_t kRing = 64;

std::string test_dir() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir = std::string(::testing::TempDir()) + "doct-flight-" +
                          info->name();
  (void)std::system(("mkdir -p " + dir).c_str());
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- flight recorder ---------------------------------------------------------

TEST(Flight, RingRecordsWrapsAndTruncates) {
  auto& recorder = obs::flight();
  recorder.configure(7, test_dir(), kRing);
  ASSERT_TRUE(recorder.enabled());
  ASSERT_EQ(recorder.capacity(), kRing);

  const std::string long_detail(500, 'x');
  for (int i = 0; i < static_cast<int>(kRing) + 40; ++i) {
    recorder.note("test", i == 0 ? long_detail : "entry-" + std::to_string(i),
                  static_cast<std::uint64_t>(i), 99);
  }

  const std::vector<obs::FlightEntry> entries = recorder.entries();
  ASSERT_EQ(entries.size(), kRing);  // bounded: oldest 40 evicted
  // Oldest-first, strictly increasing publish order.
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GT(entries[i].seq, entries[i - 1].seq);
  }
  EXPECT_EQ(entries.back().seq, recorder.noted_total());
  EXPECT_STREQ(entries.back().kind, "test");
  EXPECT_EQ(entries.back().b, 99u);
  // The 500-char detail was clamped to the POD slot, NUL-terminated.
  EXPECT_LT(std::string(entries.front().detail).size(),
            sizeof(obs::FlightEntry{}.detail));
}

TEST(Flight, DumpWritesParseableJson) {
  auto& recorder = obs::flight();
  const std::string dir = test_dir();
  recorder.configure(7, dir, kRing);
  recorder.note("deliver", "quote\"and\\backslash", 1, 2);

  ASSERT_TRUE(recorder.dump("unit").is_ok());
  const std::string body = read_file(dir + "/flight-node7-unit.json");
  ASSERT_FALSE(body.empty());

  auto parsed = obs::parse_json(body);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const obs::JsonValue& doc = parsed.value();
  EXPECT_EQ(doc.num_or("node", 0), 7);
  const obs::JsonValue* reason = doc.find("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_EQ(reason->string, "unit");
  const obs::JsonValue* entries = doc.find("entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_FALSE(entries->array.empty());
  // Full-fidelity dumps embed the metrics + trace documents.
  EXPECT_NE(doc.find("metrics"), nullptr);
  EXPECT_NE(doc.find("trace"), nullptr);
}

TEST(Flight, SignalDumpIsWellFormedJson) {
  auto& recorder = obs::flight();
  const std::string dir = test_dir();
  recorder.configure(7, dir, kRing);
  recorder.note("fault", "drop from=1 to=2", 1, 2);

  // Direct call of the async-signal-safe path (the crash handlers' body).
  recorder.dump_signal("sigtest");
  const std::string body = read_file(dir + "/flight-node7-sigtest.json");
  ASSERT_FALSE(body.empty());

  auto parsed = obs::parse_json(body);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const obs::JsonValue& doc = parsed.value();
  const obs::JsonValue* signal = doc.find("signal");
  ASSERT_NE(signal, nullptr);
  EXPECT_TRUE(signal->boolean);
  const obs::JsonValue* entries = doc.find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_FALSE(entries->array.empty());
  bool found = false;
  for (const obs::JsonValue& entry : entries->array) {
    const obs::JsonValue* kind = entry.find("kind");
    if (kind != nullptr && kind->string == "fault") found = true;
  }
  EXPECT_TRUE(found);
}

// --- mini JSON reader --------------------------------------------------------

TEST(Collector, ParseJsonHandlesRealSnapshot) {
  obs::set_metrics_enabled(true);
  obs::metrics().counter("flighttest.parse_probe").add(3);
  const std::string doc = obs::metrics().snapshot_json();
  obs::set_metrics_enabled(false);

  auto parsed = obs::parse_json(doc);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const obs::JsonValue& root = parsed.value();

  // Meta object: monotone seq, wall-clock stamp, process uptime.
  const obs::JsonValue* meta = root.find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_GE(meta->num_or("seq", 0), 1.0);
  EXPECT_GT(meta->num_or("wall_ms", 0), 1e12);  // epoch millis, not zero
  EXPECT_GT(meta->num_or("uptime_us", -1), 0.0);

  const obs::JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->num_or("flighttest.parse_probe", 0), 3.0);
}

TEST(Collector, ParseJsonRejectsMalformed) {
  EXPECT_FALSE(obs::parse_json("{\"unterminated\":").is_ok());
  EXPECT_FALSE(obs::parse_json("").is_ok());
  EXPECT_FALSE(obs::parse_json("{\"a\":1,}").is_ok());
  EXPECT_TRUE(obs::parse_json("{\"a\":[1,2,{\"b\":\"c\\\"d\"}]}").is_ok());
}

// --- collector merge ---------------------------------------------------------

std::string synthetic_snapshot(std::uint64_t seq, std::int64_t wall_ms,
                               const std::string& counters) {
  std::ostringstream out;
  out << "{\"meta\":{\"seq\":" << seq << ",\"wall_ms\":" << wall_ms
      << ",\"uptime_us\":5000,\"node\":0},\"counters\":{" << counters
      << "},\"gauges\":{},\"histograms\":{}}";
  return out.str();
}

TEST(Collector, SplitsNodePrefixesOntoRows) {
  obs::Collector collector;
  ASSERT_TRUE(collector
                  .ingest(1, synthetic_snapshot(
                                 1, 1000,
                                 "\"node1.exec.x\":5,\"node2.exec.x\":7,"
                                 "\"global.y\":3"))
                  .is_ok());

  const std::vector<std::uint64_t> nodes = collector.nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], 1u);
  EXPECT_EQ(nodes[1], 2u);

  auto parsed = obs::parse_json(collector.cluster_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const obs::JsonValue* rows = parsed.value().find("nodes");
  ASSERT_NE(rows, nullptr);
  const obs::JsonValue* row1 = rows->find("1");
  const obs::JsonValue* row2 = rows->find("2");
  ASSERT_NE(row1, nullptr);
  ASSERT_NE(row2, nullptr);
  // Prefixes stripped and re-homed; un-prefixed names on the source row.
  EXPECT_EQ(row1->find("counters")->num_or("exec.x", 0), 5.0);
  EXPECT_EQ(row2->find("counters")->num_or("exec.x", 0), 7.0);
  EXPECT_EQ(row1->find("counters")->num_or("global.y", 0), 3.0);
  EXPECT_EQ(row2->find("counters")->num_or("global.y", -1), -1.0);
}

TEST(Collector, ConvertsCounterDeltasToRates) {
  obs::Collector collector;
  ASSERT_TRUE(
      collector.ingest(3, synthetic_snapshot(1, 10'000, "\"k.c\":100"))
          .is_ok());
  ASSERT_TRUE(
      collector.ingest(3, synthetic_snapshot(2, 12'000, "\"k.c\":150"))
          .is_ok());

  auto parsed = obs::parse_json(collector.cluster_json());
  ASSERT_TRUE(parsed.is_ok());
  const obs::JsonValue* row = parsed.value().find("nodes")->find("3");
  ASSERT_NE(row, nullptr);
  // 50 increments over 2000ms -> 25/s.
  EXPECT_NEAR(row->find("rates")->num_or("k.c", 0), 25.0, 0.01);
  // A counter reset (delta < 0, e.g. a restarted shard) must not produce a
  // negative rate.
  ASSERT_TRUE(collector.ingest(3, synthetic_snapshot(3, 14'000, "\"k.c\":10"))
                  .is_ok());
  parsed = obs::parse_json(collector.cluster_json());
  ASSERT_TRUE(parsed.is_ok());
  row = parsed.value().find("nodes")->find("3");
  EXPECT_GE(row->find("rates")->num_or("k.c", 0), 0.0);
}

TEST(Collector, IngestRejectsGarbage) {
  obs::Collector collector;
  EXPECT_FALSE(collector.ingest(1, "not json at all").is_ok());
  EXPECT_TRUE(collector.nodes().empty());
}

// --- bounded trace buffer + delta cursor -------------------------------------

TEST(Trace, BoundedBufferCountsDropsAndServesDeltas) {
  auto& tracer = obs::tracer();
  tracer.clear();
  const std::size_t restore = tracer.capacity();
  tracer.set_capacity(16);
  obs::set_tracing_enabled(true);

  const std::uint64_t dropped_before = tracer.dropped_total();
  for (int i = 0; i < 40; ++i) {
    obs::Span span;
    span.trace_id = 1;
    span.span_id = static_cast<std::uint64_t>(i) + 1;
    span.node = 1;
    span.name = "unit";
    tracer.record(std::move(span));
  }
  obs::set_tracing_enabled(false);

  EXPECT_EQ(tracer.snapshot().size(), 16u);
  EXPECT_EQ(tracer.dropped_total() - dropped_before, 24u);

  // Delta cursor: everything after the cut, nothing before it.
  const std::uint64_t last = tracer.last_seq();
  EXPECT_TRUE(tracer.snapshot_since(last).empty());
  const std::vector<obs::Span> tail = tracer.snapshot_since(last - 5);
  ASSERT_EQ(tail.size(), 5u);
  for (std::size_t i = 1; i < tail.size(); ++i) {
    EXPECT_GT(tail[i].seq, tail[i - 1].seq);
  }

  tracer.set_capacity(restore);
  tracer.clear();
}

// --- chunked monitor snapshot fetch ------------------------------------------

// A metrics document larger than one chunk must arrive intact through the
// monitor's chunked entries.  Counter registrations are process-permanent;
// this test binary owns its own process, so the padding stays local.
TEST(Monitor, ChunkedFetchReassemblesOversizedSnapshot) {
  obs::set_metrics_enabled(true);
  const std::string stem(120, 'p');
  for (int i = 0; i < 600; ++i) {
    obs::metrics().counter("pad." + stem + std::to_string(i)).add(1);
  }
  ASSERT_GT(obs::metrics().snapshot_json().size(),
            services::kSnapshotChunkBytes);

  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  const ObjectId server =
      n0.objects.add_object(services::MonitorServer::make());
  services::MonitorClient client(n1.events, n1.objects, server);

  std::string doc;
  const ThreadId tid = n1.kernel.spawn([&] {
    auto metrics = client.metrics_json();
    ASSERT_TRUE(metrics.is_ok()) << metrics.status().to_string();
    doc = metrics.value();
  });
  ASSERT_TRUE(n1.kernel.join_thread(tid, 30s).is_ok());
  obs::set_metrics_enabled(false);

  ASSERT_GT(doc.size(), services::kSnapshotChunkBytes);
  auto parsed = obs::parse_json(doc);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const obs::JsonValue* counters = parsed.value().find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->num_or("pad." + stem + "599", 0), 1.0);
}

// --- in-process cluster merge + sampled executor gauges ----------------------

TEST(ClusterTelemetry, InProcessClusterMetricsJson) {
  obs::set_metrics_enabled(true);
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  n1.rpc.register_method("flight.noop",
                         [](NodeId, Reader&) -> Result<rpc::Payload> {
                           return rpc::Payload{};
                         });
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(n0.rpc.call(n1.id, "flight.noop", {}).is_ok());
  }

  // cluster_metrics_json runs a collection round inline (no collector
  // thread): samples every executor, then merges the process snapshot.
  const std::string doc = cluster.cluster_metrics_json();
  obs::set_metrics_enabled(false);

  auto parsed = obs::parse_json(doc);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const obs::JsonValue* rows = parsed.value().find("nodes");
  ASSERT_NE(rows, nullptr);
  const obs::JsonValue* row1 = rows->find("1");
  const obs::JsonValue* row2 = rows->find("2");
  ASSERT_NE(row1, nullptr) << doc.substr(0, 200);
  ASSERT_NE(row2, nullptr);
  // Per-node attribution: node 2 executed the RPC bodies, node 1 did not.
  EXPECT_GE(row2->find("counters")->num_or("rpc.requests_executed", 0), 8.0);
  // Live per-node lane-depth entries ride the executor source.
  EXPECT_GE(row1->find("counters")->num_or("exec.control_executed", -1), 0.0);
  // sample_telemetry fed the sampled-depth histograms (process-global).
  const std::string snapshot = obs::metrics().snapshot_json();
  EXPECT_NE(snapshot.find("exec.lane_depth_sampled.control"),
            std::string::npos);
  EXPECT_NE(snapshot.find("exec.reservation_claimed_sampled"),
            std::string::npos);
}

TEST(ClusterTelemetry, BackgroundCollectorThreadPublishes) {
  obs::set_metrics_enabled(true);
  ClusterConfig config;
  config.telemetry.collector = true;
  config.telemetry.period = 20ms;
  Cluster cluster(2, config);

  // Two rounds make rates appear; poll until the collector has rows.
  std::string doc;
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(10ms);
    doc = cluster.collector().cluster_json();
    auto parsed = obs::parse_json(doc);
    if (parsed.is_ok()) {
      const obs::JsonValue* rows = parsed.value().find("nodes");
      if (rows != nullptr && rows->find("1") != nullptr &&
          rows->find("1")->find("rates") != nullptr &&
          !rows->find("1")->find("rates")->object.empty()) {
        break;
      }
    }
  }
  obs::set_metrics_enabled(false);

  auto parsed = obs::parse_json(doc);
  ASSERT_TRUE(parsed.is_ok()) << doc.substr(0, 200);
  const obs::JsonValue* row = parsed.value().find("nodes")->find("1");
  ASSERT_NE(row, nullptr);
  EXPECT_FALSE(row->find("rates")->object.empty())
      << "rates never appeared after two collector rounds";
}

// --- observer HELLO auto-peer (the doct-top attach path) ---------------------

// An endpoint the cluster was never configured with connects in, and the
// accepting side learns its reply address from the HELLO listen-address
// extension: the round trip works with NO peer entry for the observer.
TEST(ObserverAttach, HelloCarriesReplyAddress) {
  const std::string base = ::testing::TempDir() + "doct-hello-" +
                           std::to_string(::getpid());
  net::SocketTransportConfig server_config;
  server_config.self = NodeId{1};
  server_config.listen = "unix:" + base + "-server.sock";
  net::SocketTransport server(server_config);
  ASSERT_TRUE(server.start().is_ok());

  net::Demux server_demux;
  ASSERT_TRUE(server.register_node(NodeId{1}, server_demux.as_handler())
                  .is_ok());
  IdGenerator server_ids(1ull << 40);
  rpc::RpcEndpoint server_rpc(server, server_demux, NodeId{1}, server_ids);
  server_rpc.register_method("hello.echo",
                             [](NodeId caller, Reader&)
                                 -> Result<rpc::Payload> {
                               Writer w;
                               w.put(caller.value());
                               return std::move(w).take();
                             });

  net::SocketTransportConfig observer_config;
  observer_config.self = NodeId{913};
  observer_config.listen = "unix:" + base + "-observer.sock";
  observer_config.peers[NodeId{1}] = server_config.listen;
  net::SocketTransport observer(observer_config);
  ASSERT_TRUE(observer.start().is_ok());

  net::Demux observer_demux;
  ASSERT_TRUE(observer
                  .register_node(NodeId{913}, observer_demux.as_handler())
                  .is_ok());
  IdGenerator observer_ids(913ull << 40);
  rpc::RpcEndpoint observer_rpc(observer, observer_demux, NodeId{913},
                                observer_ids);
  ASSERT_TRUE(observer.wait_for_peers(1, 10s));

  auto reply = observer_rpc.call(NodeId{1}, "hello.echo", {}, 10s);
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  Reader r(std::move(reply).value());
  EXPECT_EQ(r.get<std::uint64_t>(), 913u);
}

}  // namespace
}  // namespace doct
