// Unit tests for the simulated network: point-to-point delivery, broadcast,
// multicast groups, latency injection, loss injection, partitions, quiesce.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/queue.hpp"
#include "net/demux.hpp"
#include "net/network.hpp"

namespace doct::net {
namespace {

using namespace std::chrono_literals;

Message make_message(NodeId from, NodeId to, std::uint16_t kind = 1,
                     std::vector<std::uint8_t> payload = {}) {
  return Message{.from = from, .to = to, .kind = kind, .call = CallId{},
                 .payload = std::move(payload)};
}

TEST(Network, DeliversPointToPoint) {
  Network net;
  const NodeId a{1}, b{2};
  BlockingQueue<Message> inbox;
  ASSERT_TRUE(net.register_node(a, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(b, [&](const Message& m) { inbox.push(m); }).is_ok());

  ASSERT_TRUE(net.send(make_message(a, b, 42, {9, 9})).is_ok());
  net.quiesce();

  auto m = inbox.try_pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->from, a);
  EXPECT_EQ(m->kind, 42);
  EXPECT_EQ(m->payload, (std::vector<std::uint8_t>{9, 9}));
}

TEST(Network, SendToUnknownNodeFails) {
  Network net;
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  const Status s = net.send(make_message(NodeId{1}, NodeId{99}));
  EXPECT_EQ(s.code(), StatusCode::kNoSuchNode);
}

TEST(Network, RegisterDuplicateFails) {
  Network net;
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  EXPECT_EQ(net.register_node(NodeId{1}, [](const Message&) {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(Network, RegisterInvalidArgsFail) {
  Network net;
  EXPECT_EQ(net.register_node(NodeId{}, [](const Message&) {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(net.register_node(NodeId{5}, MessageHandler{}).code(),
            StatusCode::kInvalidArgument);
}

TEST(Network, UnregisterStopsDelivery) {
  Network net;
  std::atomic<int> received{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { received++; }).is_ok());
  ASSERT_TRUE(net.unregister_node(NodeId{2}).is_ok());
  EXPECT_EQ(net.send(make_message(NodeId{1}, NodeId{2})).code(),
            StatusCode::kNoSuchNode);
  net.quiesce();
  EXPECT_EQ(received.load(), 0);
  EXPECT_EQ(net.unregister_node(NodeId{2}).code(), StatusCode::kNoSuchNode);
}

TEST(Network, BroadcastReachesAllButSender) {
  Network net;
  std::atomic<int> a{0}, b{0}, c{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [&](const Message&) { a++; }).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { b++; }).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{3}, [&](const Message&) { c++; }).is_ok());

  ASSERT_TRUE(net.broadcast(make_message(NodeId{1}, NodeId{})).is_ok());
  net.quiesce();
  EXPECT_EQ(a.load(), 0);
  EXPECT_EQ(b.load(), 1);
  EXPECT_EQ(c.load(), 1);
  EXPECT_EQ(net.stats().fanout_messages, 2u);
  EXPECT_EQ(net.stats().broadcast_sends, 1u);
}

TEST(Network, MulticastReachesGroupMembersOnly) {
  Network net;
  std::atomic<int> a{0}, b{0}, c{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [&](const Message&) { a++; }).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { b++; }).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{3}, [&](const Message&) { c++; }).is_ok());

  const GroupId g{10};
  ASSERT_TRUE(net.create_multicast_group(g).is_ok());
  ASSERT_TRUE(net.join(g, NodeId{2}).is_ok());
  ASSERT_TRUE(net.join(g, NodeId{3}).is_ok());
  ASSERT_TRUE(net.leave(g, NodeId{3}).is_ok());

  ASSERT_TRUE(net.multicast(g, make_message(NodeId{1}, NodeId{})).is_ok());
  net.quiesce();
  EXPECT_EQ(a.load(), 0);
  EXPECT_EQ(b.load(), 1);
  EXPECT_EQ(c.load(), 0);
}

TEST(Network, MulticastSenderExcludedEvenIfMember) {
  Network net;
  std::atomic<int> a{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [&](const Message&) { a++; }).is_ok());
  const GroupId g{10};
  ASSERT_TRUE(net.create_multicast_group(g).is_ok());
  ASSERT_TRUE(net.join(g, NodeId{1}).is_ok());
  ASSERT_TRUE(net.multicast(g, make_message(NodeId{1}, NodeId{})).is_ok());
  net.quiesce();
  EXPECT_EQ(a.load(), 0);
}

TEST(Network, MulticastGroupErrors) {
  Network net;
  EXPECT_EQ(net.join(GroupId{5}, NodeId{1}).code(), StatusCode::kNoSuchGroup);
  EXPECT_EQ(net.multicast(GroupId{5}, make_message(NodeId{1}, NodeId{})).code(),
            StatusCode::kNoSuchGroup);
  ASSERT_TRUE(net.create_multicast_group(GroupId{5}).is_ok());
  EXPECT_EQ(net.create_multicast_group(GroupId{5}).code(),
            StatusCode::kAlreadyExists);
}

TEST(Network, PartitionDropsBothDirections) {
  Network net;
  std::atomic<int> a{0}, b{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [&](const Message&) { a++; }).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { b++; }).is_ok());

  net.partition(NodeId{1}, NodeId{2});
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  ASSERT_TRUE(net.send(make_message(NodeId{2}, NodeId{1})).is_ok());
  net.quiesce();
  EXPECT_EQ(a.load(), 0);
  EXPECT_EQ(b.load(), 0);
  EXPECT_EQ(net.stats().dropped, 2u);

  net.heal(NodeId{1}, NodeId{2});
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  net.quiesce();
  EXPECT_EQ(b.load(), 1);
}

TEST(Network, IsolateAndReconnect) {
  Network net;
  std::atomic<int> b{0}, c{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { b++; }).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{3}, [&](const Message&) { c++; }).is_ok());

  net.isolate(NodeId{1});
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{3})).is_ok());
  net.quiesce();
  EXPECT_EQ(b.load() + c.load(), 0);

  net.reconnect(NodeId{1});
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  net.quiesce();
  EXPECT_EQ(b.load(), 1);
}

TEST(Network, DropProbabilityOneLosesEverything) {
  NetworkConfig config;
  config.drop_probability = 1.0;
  Network net(config);
  std::atomic<int> received{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { received++; }).is_ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  }
  net.quiesce();
  EXPECT_EQ(received.load(), 0);
  EXPECT_EQ(net.stats().dropped, 20u);
}

TEST(Network, LatencyDelaysDelivery) {
  NetworkConfig config;
  config.base_latency = 20ms;
  Network net(config);
  std::atomic<bool> got{false};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { got = true; }).is_ok());

  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  net.quiesce();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(got.load());
  EXPECT_GE(elapsed, 18ms);  // allow scheduler slop below the nominal 20ms
}

TEST(Network, FifoOrderPreservedPerLink) {
  Network net;
  std::vector<int> order;
  std::mutex mu;
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net
                  .register_node(NodeId{2},
                                 [&](const Message& m) {
                                   std::lock_guard<std::mutex> lock(mu);
                                   order.push_back(m.kind);
                                 })
                  .is_ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2},
                                      static_cast<std::uint16_t>(i))).is_ok());
  }
  net.quiesce();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Network, StatsCountBytes) {
  Network net;
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2}, 1,
                                    std::vector<std::uint8_t>(128, 0))).is_ok());
  net.quiesce();
  EXPECT_EQ(net.stats().bytes, 128u);
  net.reset_stats();
  EXPECT_EQ(net.stats().bytes, 0u);
}

TEST(Network, NodesListsRegisteredSorted) {
  Network net;
  ASSERT_TRUE(net.register_node(NodeId{3}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  const auto nodes = net.nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], NodeId{1});
  EXPECT_EQ(nodes[1], NodeId{3});
}

TEST(Network, HandlerMaySendMoreMessages) {
  // A chain a->b->c triggered inside handlers: quiesce must cover cascades.
  Network net;
  std::atomic<bool> done{false};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net
                  .register_node(NodeId{2},
                                 [&](const Message& m) {
                                   net.send(make_message(m.to, NodeId{3}));
                                 })
                  .is_ok());
  ASSERT_TRUE(net.register_node(NodeId{3}, [&](const Message&) { done = true; }).is_ok());
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  net.quiesce();
  EXPECT_TRUE(done.load());
}

TEST(Demux, RoutesByKind) {
  Demux demux;
  std::atomic<int> a{0}, b{0};
  demux.route(1, [&](const Message&) { a++; });
  demux.route(2, [&](const Message&) { b++; });
  demux(make_message(NodeId{1}, NodeId{2}, 1));
  demux(make_message(NodeId{1}, NodeId{2}, 2));
  demux(make_message(NodeId{1}, NodeId{2}, 3));  // unrouted: dropped
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 1);
}

TEST(Demux, WorksAsNetworkHandler) {
  Network net;
  Demux demux;
  std::atomic<int> hits{0};
  demux.route(7, [&](const Message&) { hits++; });
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, demux.as_handler()).is_ok());
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2}, 7)).is_ok());
  net.quiesce();
  EXPECT_EQ(hits.load(), 1);
}

class NetworkScaleTest : public ::testing::TestWithParam<int> {};

// Property: broadcast fan-out is exactly n-1 regardless of n.
TEST_P(NetworkScaleTest, BroadcastFanoutIsNMinusOne) {
  const int n = GetParam();
  Network net;
  std::atomic<int> received{0};
  for (int i = 1; i <= n; ++i) {
    ASSERT_TRUE(net
                    .register_node(NodeId{static_cast<std::uint64_t>(i)},
                                   [&](const Message&) { received++; })
                    .is_ok());
  }
  ASSERT_TRUE(net.broadcast(make_message(NodeId{1}, NodeId{})).is_ok());
  net.quiesce();
  EXPECT_EQ(received.load(), n - 1);
  EXPECT_EQ(net.stats().fanout_messages, static_cast<std::uint64_t>(n - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, NetworkScaleTest,
                         ::testing::Values(2, 4, 8, 16, 32));

// --- deterministic fault injection ------------------------------------------------

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.link_defaults.drop_probability = 0.3;
  plan.link_defaults.duplicate_probability = 0.2;
  plan.link_defaults.reorder_probability = 0.1;

  FaultInjector x, y;
  x.load(plan);
  y.load(plan);
  for (int i = 0; i < 500; ++i) {
    const auto dx = x.decide(NodeId{1}, NodeId{2}, 7, Duration{0});
    const auto dy = y.decide(NodeId{1}, NodeId{2}, 7, Duration{0});
    EXPECT_EQ(dx.drop, dy.drop);
    EXPECT_EQ(dx.duplicate, dy.duplicate);
    EXPECT_EQ(dx.reorder, dy.reorder);
  }
}

TEST(FaultInjector, StreamsAreIndependent) {
  // Interleaving traffic on another link must not change the decisions a
  // stream sees: each (link, kind) pair draws from its own counter.
  FaultPlan plan;
  plan.seed = 99;
  plan.link_defaults.drop_probability = 0.5;

  FaultInjector alone, interleaved;
  alone.load(plan);
  interleaved.load(plan);
  std::vector<bool> expected;
  for (int i = 0; i < 200; ++i) {
    expected.push_back(alone.decide(NodeId{1}, NodeId{2}, 7, Duration{0}).drop);
  }
  for (int i = 0; i < 200; ++i) {
    // Noise on other links / kinds before each decision.
    (void)interleaved.decide(NodeId{2}, NodeId{1}, 7, Duration{0});
    (void)interleaved.decide(NodeId{1}, NodeId{3}, 7, Duration{0});
    (void)interleaved.decide(NodeId{1}, NodeId{2}, 8, Duration{0});
    EXPECT_EQ(interleaved.decide(NodeId{1}, NodeId{2}, 7, Duration{0}).drop,
              expected[static_cast<std::size_t>(i)]);
  }
}

TEST(Network, FaultPlanDropsDeterministically) {
  // Two identical runs of the same sequential workload under the same plan
  // must produce identical fault counts.
  auto run = [](std::uint64_t seed) {
    Network net;
    FaultPlan plan;
    plan.seed = seed;
    plan.link_defaults.drop_probability = 0.25;
    plan.link_defaults.duplicate_probability = 0.15;
    net.load_fault_plan(plan);
    std::atomic<int> received{0};
    EXPECT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
    EXPECT_TRUE(
        net.register_node(NodeId{2}, [&](const Message&) { received++; })
            .is_ok());
    for (int i = 0; i < 400; ++i) {
      EXPECT_TRUE(net.send(make_message(NodeId{1}, NodeId{2}, 7)).is_ok());
    }
    net.quiesce();
    const auto stats = net.stats();
    EXPECT_EQ(received.load(),
              400 - static_cast<int>(stats.dropped_by_fault) +
                  static_cast<int>(stats.duplicated));
    return std::make_pair(stats.dropped_by_fault, stats.duplicated);
  };
  const auto first = run(0xC0FFEE);
  const auto second = run(0xC0FFEE);
  EXPECT_GT(first.first, 0u);
  EXPECT_GT(first.second, 0u);
  EXPECT_EQ(first, second);

  const auto other_seed = run(0xBEEF);
  EXPECT_NE(first, other_seed);  // astronomically unlikely to collide
}

TEST(Network, DuplicateFaultDeliversTwice) {
  Network net;
  FaultPlan plan;
  plan.link_defaults.duplicate_probability = 1.0;
  net.load_fault_plan(plan);
  std::atomic<int> received{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(
      net.register_node(NodeId{2}, [&](const Message&) { received++; })
          .is_ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  }
  net.quiesce();
  EXPECT_EQ(received.load(), 20);
  EXPECT_EQ(net.stats().duplicated, 10u);
}

TEST(Network, FaultWindowExpires) {
  // A window covering only the first instant: faults stop once it closes.
  Network net;
  FaultPlan plan;
  FaultWindow w;
  w.start = Duration{0};
  w.end = std::chrono::microseconds(1);
  w.faults.drop_probability = 1.0;
  plan.windows.push_back(w);
  net.load_fault_plan(plan);
  std::atomic<int> received{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(
      net.register_node(NodeId{2}, [&](const Message&) { received++; })
          .is_ok());
  std::this_thread::sleep_for(5ms);  // let the window lapse
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  net.quiesce();
  EXPECT_EQ(received.load(), 1);
}

TEST(Network, CrashDropsSilentlyAndRestartRecovers) {
  Network net;
  std::atomic<int> received{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(
      net.register_node(NodeId{2}, [&](const Message&) { received++; })
          .is_ok());

  ASSERT_TRUE(net.crash_node(NodeId{2}).is_ok());
  EXPECT_TRUE(net.is_crashed(NodeId{2}));
  // Datagram semantics: accepted, silently lost — NOT kNoSuchNode, so retry
  // layers keep probing for the restart.
  EXPECT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  net.quiesce();
  EXPECT_EQ(received.load(), 0);

  ASSERT_TRUE(net.restart_node(NodeId{2}).is_ok());
  EXPECT_FALSE(net.is_crashed(NodeId{2}));
  EXPECT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  net.quiesce();
  EXPECT_EQ(received.load(), 1);

  const auto stats = net.stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_GE(stats.dropped_crashed, 1u);
}

TEST(Network, ScheduledCrashAndRestartFire) {
  Network net;
  std::atomic<int> received{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(
      net.register_node(NodeId{2}, [&](const Message&) { received++; })
          .is_ok());
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{.node = NodeId{2},
                                    .at = std::chrono::milliseconds(5),
                                    .restart_at = std::chrono::milliseconds(30)});
  net.load_fault_plan(plan);

  // Poll the monotonic counters, not the transient is_crashed state: the
  // 25ms crashed window can slip past a poll loop on a loaded machine.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (net.stats().restarts == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  const auto stats = net.stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_FALSE(net.is_crashed(NodeId{2}));

  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  net.quiesce();
  EXPECT_EQ(received.load(), 1);
}

TEST(Network, ScheduledPartitionHeals) {
  Network net;
  std::atomic<int> received{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(
      net.register_node(NodeId{2}, [&](const Message&) { received++; })
          .is_ok());
  FaultPlan plan;
  plan.partitions.push_back(
      PartitionEvent{.a = NodeId{1},
                     .b = NodeId{2},
                     .at = Duration{0},
                     .heal_at = std::chrono::milliseconds(20)});
  net.load_fault_plan(plan);

  // While partitioned, traffic is cut; after the scheduled heal it flows.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (received.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
    std::this_thread::sleep_for(2ms);
  }
  net.quiesce();
  EXPECT_GT(received.load(), 0);
  EXPECT_GT(net.stats().dropped_by_partition, 0u);
}

TEST(Network, FanoutLegsIndependentlyLossy) {
  // The legacy NetworkConfig::drop_probability only ever applied to
  // point-to-point sends; the injector makes each broadcast leg lossy.
  Network net;
  FaultPlan plan;
  plan.seed = 7;
  plan.link_defaults.drop_probability = 0.5;
  net.load_fault_plan(plan);
  std::atomic<int> received{0};
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(
        net.register_node(NodeId{i}, [&](const Message&) { received++; })
            .is_ok());
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(net.broadcast(make_message(NodeId{1}, NodeId{})).is_ok());
  }
  net.quiesce();
  // 300 legs at p=0.5: some but not all must be dropped.
  EXPECT_GT(net.stats().dropped_by_fault, 0u);
  EXPECT_GT(received.load(), 0);
  EXPECT_LT(received.load(), 300);
}

}  // namespace
}  // namespace doct::net
