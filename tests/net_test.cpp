// Unit tests for the simulated network: point-to-point delivery, broadcast,
// multicast groups, latency injection, loss injection, partitions, quiesce.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "common/queue.hpp"
#include "net/demux.hpp"
#include "net/network.hpp"

namespace doct::net {
namespace {

using namespace std::chrono_literals;

Message make_message(NodeId from, NodeId to, std::uint16_t kind = 1,
                     std::vector<std::uint8_t> payload = {}) {
  return Message{.from = from, .to = to, .kind = kind, .call = CallId{},
                 .payload = std::move(payload)};
}

TEST(Network, DeliversPointToPoint) {
  Network net;
  const NodeId a{1}, b{2};
  BlockingQueue<Message> inbox;
  ASSERT_TRUE(net.register_node(a, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(b, [&](const Message& m) { inbox.push(m); }).is_ok());

  ASSERT_TRUE(net.send(make_message(a, b, 42, {9, 9})).is_ok());
  net.quiesce();

  auto m = inbox.try_pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->from, a);
  EXPECT_EQ(m->kind, 42);
  EXPECT_EQ(m->payload, (std::vector<std::uint8_t>{9, 9}));
}

TEST(Network, SendToUnknownNodeFails) {
  Network net;
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  const Status s = net.send(make_message(NodeId{1}, NodeId{99}));
  EXPECT_EQ(s.code(), StatusCode::kNoSuchNode);
}

TEST(Network, RegisterDuplicateFails) {
  Network net;
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  EXPECT_EQ(net.register_node(NodeId{1}, [](const Message&) {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(Network, RegisterInvalidArgsFail) {
  Network net;
  EXPECT_EQ(net.register_node(NodeId{}, [](const Message&) {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(net.register_node(NodeId{5}, MessageHandler{}).code(),
            StatusCode::kInvalidArgument);
}

TEST(Network, UnregisterStopsDelivery) {
  Network net;
  std::atomic<int> received{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { received++; }).is_ok());
  ASSERT_TRUE(net.unregister_node(NodeId{2}).is_ok());
  EXPECT_EQ(net.send(make_message(NodeId{1}, NodeId{2})).code(),
            StatusCode::kNoSuchNode);
  net.quiesce();
  EXPECT_EQ(received.load(), 0);
  EXPECT_EQ(net.unregister_node(NodeId{2}).code(), StatusCode::kNoSuchNode);
}

TEST(Network, BroadcastReachesAllButSender) {
  Network net;
  std::atomic<int> a{0}, b{0}, c{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [&](const Message&) { a++; }).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { b++; }).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{3}, [&](const Message&) { c++; }).is_ok());

  ASSERT_TRUE(net.broadcast(make_message(NodeId{1}, NodeId{})).is_ok());
  net.quiesce();
  EXPECT_EQ(a.load(), 0);
  EXPECT_EQ(b.load(), 1);
  EXPECT_EQ(c.load(), 1);
  EXPECT_EQ(net.stats().fanout_messages, 2u);
  EXPECT_EQ(net.stats().broadcast_sends, 1u);
}

TEST(Network, MulticastReachesGroupMembersOnly) {
  Network net;
  std::atomic<int> a{0}, b{0}, c{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [&](const Message&) { a++; }).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { b++; }).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{3}, [&](const Message&) { c++; }).is_ok());

  const GroupId g{10};
  ASSERT_TRUE(net.create_multicast_group(g).is_ok());
  ASSERT_TRUE(net.join(g, NodeId{2}).is_ok());
  ASSERT_TRUE(net.join(g, NodeId{3}).is_ok());
  ASSERT_TRUE(net.leave(g, NodeId{3}).is_ok());

  ASSERT_TRUE(net.multicast(g, make_message(NodeId{1}, NodeId{})).is_ok());
  net.quiesce();
  EXPECT_EQ(a.load(), 0);
  EXPECT_EQ(b.load(), 1);
  EXPECT_EQ(c.load(), 0);
}

TEST(Network, MulticastSenderExcludedEvenIfMember) {
  Network net;
  std::atomic<int> a{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [&](const Message&) { a++; }).is_ok());
  const GroupId g{10};
  ASSERT_TRUE(net.create_multicast_group(g).is_ok());
  ASSERT_TRUE(net.join(g, NodeId{1}).is_ok());
  ASSERT_TRUE(net.multicast(g, make_message(NodeId{1}, NodeId{})).is_ok());
  net.quiesce();
  EXPECT_EQ(a.load(), 0);
}

TEST(Network, MulticastGroupErrors) {
  Network net;
  EXPECT_EQ(net.join(GroupId{5}, NodeId{1}).code(), StatusCode::kNoSuchGroup);
  EXPECT_EQ(net.multicast(GroupId{5}, make_message(NodeId{1}, NodeId{})).code(),
            StatusCode::kNoSuchGroup);
  ASSERT_TRUE(net.create_multicast_group(GroupId{5}).is_ok());
  EXPECT_EQ(net.create_multicast_group(GroupId{5}).code(),
            StatusCode::kAlreadyExists);
}

TEST(Network, PartitionDropsBothDirections) {
  Network net;
  std::atomic<int> a{0}, b{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [&](const Message&) { a++; }).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { b++; }).is_ok());

  net.partition(NodeId{1}, NodeId{2});
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  ASSERT_TRUE(net.send(make_message(NodeId{2}, NodeId{1})).is_ok());
  net.quiesce();
  EXPECT_EQ(a.load(), 0);
  EXPECT_EQ(b.load(), 0);
  EXPECT_EQ(net.stats().dropped, 2u);

  net.heal(NodeId{1}, NodeId{2});
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  net.quiesce();
  EXPECT_EQ(b.load(), 1);
}

TEST(Network, IsolateAndReconnect) {
  Network net;
  std::atomic<int> b{0}, c{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { b++; }).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{3}, [&](const Message&) { c++; }).is_ok());

  net.isolate(NodeId{1});
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{3})).is_ok());
  net.quiesce();
  EXPECT_EQ(b.load() + c.load(), 0);

  net.reconnect(NodeId{1});
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  net.quiesce();
  EXPECT_EQ(b.load(), 1);
}

TEST(Network, DropProbabilityOneLosesEverything) {
  NetworkConfig config;
  config.drop_probability = 1.0;
  Network net(config);
  std::atomic<int> received{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { received++; }).is_ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  }
  net.quiesce();
  EXPECT_EQ(received.load(), 0);
  EXPECT_EQ(net.stats().dropped, 20u);
}

TEST(Network, LatencyDelaysDelivery) {
  NetworkConfig config;
  config.base_latency = 20ms;
  Network net(config);
  std::atomic<bool> got{false};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [&](const Message&) { got = true; }).is_ok());

  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  net.quiesce();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(got.load());
  EXPECT_GE(elapsed, 18ms);  // allow scheduler slop below the nominal 20ms
}

TEST(Network, FifoOrderPreservedPerLink) {
  Network net;
  std::vector<int> order;
  std::mutex mu;
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net
                  .register_node(NodeId{2},
                                 [&](const Message& m) {
                                   std::lock_guard<std::mutex> lock(mu);
                                   order.push_back(m.kind);
                                 })
                  .is_ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2},
                                      static_cast<std::uint16_t>(i))).is_ok());
  }
  net.quiesce();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Network, StatsCountBytes) {
  Network net;
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2}, 1,
                                    std::vector<std::uint8_t>(128, 0))).is_ok());
  net.quiesce();
  EXPECT_EQ(net.stats().bytes, 128u);
  net.reset_stats();
  EXPECT_EQ(net.stats().bytes, 0u);
}

TEST(Network, NodesListsRegisteredSorted) {
  Network net;
  ASSERT_TRUE(net.register_node(NodeId{3}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  const auto nodes = net.nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], NodeId{1});
  EXPECT_EQ(nodes[1], NodeId{3});
}

TEST(Network, HandlerMaySendMoreMessages) {
  // A chain a->b->c triggered inside handlers: quiesce must cover cascades.
  Network net;
  std::atomic<bool> done{false};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net
                  .register_node(NodeId{2},
                                 [&](const Message& m) {
                                   net.send(make_message(m.to, NodeId{3}));
                                 })
                  .is_ok());
  ASSERT_TRUE(net.register_node(NodeId{3}, [&](const Message&) { done = true; }).is_ok());
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2})).is_ok());
  net.quiesce();
  EXPECT_TRUE(done.load());
}

TEST(Demux, RoutesByKind) {
  Demux demux;
  std::atomic<int> a{0}, b{0};
  demux.route(1, [&](const Message&) { a++; });
  demux.route(2, [&](const Message&) { b++; });
  demux(make_message(NodeId{1}, NodeId{2}, 1));
  demux(make_message(NodeId{1}, NodeId{2}, 2));
  demux(make_message(NodeId{1}, NodeId{2}, 3));  // unrouted: dropped
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 1);
}

TEST(Demux, WorksAsNetworkHandler) {
  Network net;
  Demux demux;
  std::atomic<int> hits{0};
  demux.route(7, [&](const Message&) { hits++; });
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2}, demux.as_handler()).is_ok());
  ASSERT_TRUE(net.send(make_message(NodeId{1}, NodeId{2}, 7)).is_ok());
  net.quiesce();
  EXPECT_EQ(hits.load(), 1);
}

class NetworkScaleTest : public ::testing::TestWithParam<int> {};

// Property: broadcast fan-out is exactly n-1 regardless of n.
TEST_P(NetworkScaleTest, BroadcastFanoutIsNMinusOne) {
  const int n = GetParam();
  Network net;
  std::atomic<int> received{0};
  for (int i = 1; i <= n; ++i) {
    ASSERT_TRUE(net
                    .register_node(NodeId{static_cast<std::uint64_t>(i)},
                                   [&](const Message&) { received++; })
                    .is_ok());
  }
  ASSERT_TRUE(net.broadcast(make_message(NodeId{1}, NodeId{})).is_ok());
  net.quiesce();
  EXPECT_EQ(received.load(), n - 1);
  EXPECT_EQ(net.stats().fanout_messages, static_cast<std::uint64_t>(n - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, NetworkScaleTest,
                         ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
}  // namespace doct::net
