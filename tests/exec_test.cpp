// Unit tests for the per-node executor (src/exec) and the BlockingQueue
// drain semantics it and the network mailboxes rely on: priority order
// across lanes, per-lane overload policies (block / shed / coalesce), the
// control reserve, the single-lane ablation, and drain-on-shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/queue.hpp"
#include "exec/executor.hpp"

namespace doct {
namespace {

using namespace std::chrono_literals;
using exec::Executor;
using exec::ExecutorConfig;
using exec::Lane;
using exec::OverloadPolicy;

// A task the test can park inside an executor worker and release later.
class Gate {
 public:
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }

  // Blocks until a worker is parked inside wait().
  void await_entry() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_; });
  }

  void open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool open_ = false;
};

// --- BlockingQueue drain semantics ----------------------------------------

TEST(BlockingQueueDrain, PopAllTakesEverythingInOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  const std::deque<int> batch = q.pop_all();
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(batch[static_cast<size_t>(i)], i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueueDrain, NothingLostAcrossClose) {
  // Items pushed before close() must all be drained; the empty batch is the
  // closed-and-drained signal consumers exit on.
  BlockingQueue<int> q;
  constexpr int kItems = 1000;
  for (int i = 0; i < kItems; ++i) q.push(i);
  q.close();
  EXPECT_FALSE(q.push(kItems));  // late push is refused, not queued

  int seen = 0;
  while (true) {
    const std::deque<int> batch = q.pop_all();
    if (batch.empty()) break;
    for (int item : batch) EXPECT_EQ(item, seen++);
  }
  EXPECT_EQ(seen, kItems);
}

TEST(BlockingQueueDrain, PopAllWakesOnClose) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_TRUE(q.pop_all().empty()); });
  std::this_thread::sleep_for(10ms);
  q.close();
  consumer.join();
}

TEST(BlockingQueueDrain, PushBoundedRefusesWhenFull) {
  using Q = BlockingQueue<int>;
  Q q;
  EXPECT_EQ(q.push_bounded(1, 2), Q::PushResult::kOk);
  EXPECT_EQ(q.push_bounded(2, 2), Q::PushResult::kOk);
  EXPECT_EQ(q.push_bounded(3, 2), Q::PushResult::kFull);
  EXPECT_EQ(q.size(), 2u);
  ASSERT_TRUE(q.try_pop().has_value());
  EXPECT_EQ(q.push_bounded(3, 2), Q::PushResult::kOk);  // space reopened
  EXPECT_EQ(q.push_bounded(4, 0), Q::PushResult::kOk);  // 0 = unbounded
  q.close();
  EXPECT_EQ(q.push_bounded(5, 2), Q::PushResult::kClosed);
}

// --- Executor lanes --------------------------------------------------------

TEST(ExecutorLanes, ControlOvertakesEventAndBulk) {
  ExecutorConfig config;
  config.workers = 1;  // one worker => execution order == pick order
  Gate gate;
  std::vector<Lane> order;
  std::mutex order_mu;
  Executor ex(config, "test.priority");

  ASSERT_TRUE(ex.submit(Lane::kBulk, [&] { gate.wait(); }).is_ok());
  gate.await_entry();
  // Queue lowest-priority first: admission order must NOT decide.
  auto record = [&](Lane lane) {
    return [&order, &order_mu, lane] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(lane);
    };
  };
  ASSERT_TRUE(ex.submit(Lane::kBulk, record(Lane::kBulk)).is_ok());
  ASSERT_TRUE(ex.submit(Lane::kEvent, record(Lane::kEvent)).is_ok());
  ASSERT_TRUE(ex.submit(Lane::kControl, record(Lane::kControl)).is_ok());
  gate.open();
  ex.shutdown();  // drains everything queued

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], Lane::kControl);
  EXPECT_EQ(order[1], Lane::kEvent);
  EXPECT_EQ(order[2], Lane::kBulk);
}

TEST(ExecutorLanes, SingleLaneAblationIsFifoAcrossLanes) {
  ExecutorConfig config;
  config.workers = 1;
  config.single_lane = true;
  Gate gate;
  std::vector<Lane> order;
  std::mutex order_mu;
  Executor ex(config, "test.single_lane");

  ASSERT_TRUE(ex.submit(Lane::kBulk, [&] { gate.wait(); }).is_ok());
  gate.await_entry();
  auto record = [&](Lane lane) {
    return [&order, &order_mu, lane] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(lane);
    };
  };
  ASSERT_TRUE(ex.submit(Lane::kBulk, record(Lane::kBulk)).is_ok());
  ASSERT_TRUE(ex.submit(Lane::kEvent, record(Lane::kEvent)).is_ok());
  ASSERT_TRUE(ex.submit(Lane::kControl, record(Lane::kControl)).is_ok());
  gate.open();
  ex.shutdown();

  // The pre-refactor world: control waits its turn behind the backlog.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], Lane::kBulk);
  EXPECT_EQ(order[1], Lane::kEvent);
  EXPECT_EQ(order[2], Lane::kControl);
  // Stats stay attributed to the ORIGIN lane, not the physical queue.
  const exec::ExecutorStats stats = ex.stats();
  EXPECT_EQ(stats.lanes[static_cast<size_t>(Lane::kControl)].executed, 1u);
  EXPECT_EQ(stats.lanes[static_cast<size_t>(Lane::kBulk)].executed, 2u);
}

TEST(ExecutorLanes, ShedNewestFailsFastWhenFull) {
  ExecutorConfig config;
  config.workers = 1;
  config.event.capacity = 1;
  config.event.policy = OverloadPolicy::kShedNewest;
  Gate gate;
  Executor ex(config, "test.shed");

  ASSERT_TRUE(ex.submit(Lane::kBulk, [&] { gate.wait(); }).is_ok());
  gate.await_entry();
  ASSERT_TRUE(ex.submit(Lane::kEvent, [] {}).is_ok());  // fills capacity 1
  const Status refused = ex.submit(Lane::kEvent, [] {});
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);

  const exec::ExecutorStats stats = ex.stats();
  EXPECT_EQ(stats.lanes[static_cast<size_t>(Lane::kEvent)].shed, 1u);
  EXPECT_EQ(stats.shed_total(), 1u);
  gate.open();
  ex.shutdown();
  // The admitted task still ran; the shed one never did.
  EXPECT_EQ(ex.stats().lanes[static_cast<size_t>(Lane::kEvent)].executed, 1u);
}

TEST(ExecutorLanes, TrySubmitNeverBlocksOnABlockLane) {
  ExecutorConfig config;
  config.workers = 1;
  config.bulk.capacity = 1;  // policy stays kBlock
  Gate gate;
  Executor ex(config, "test.try_submit");

  ASSERT_TRUE(ex.submit(Lane::kBulk, [&] { gate.wait(); }).is_ok());
  gate.await_entry();
  ASSERT_TRUE(ex.try_submit(Lane::kBulk, [] {}).is_ok());  // fills capacity
  const auto before = std::chrono::steady_clock::now();
  const Status refused = ex.try_submit(Lane::kBulk, [] {});
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_LT(elapsed, 1s);  // returned immediately, not after block_deadline
  gate.open();
  ex.shutdown();
}

TEST(ExecutorLanes, BlockPolicyWaitsForSpaceThenAdmits) {
  ExecutorConfig config;
  config.workers = 1;
  config.bulk.capacity = 1;
  Gate gate;
  std::atomic<int> ran{0};
  Executor ex(config, "test.block");

  ASSERT_TRUE(ex.submit(Lane::kBulk, [&] { gate.wait(); }).is_ok());
  gate.await_entry();
  ASSERT_TRUE(ex.submit(Lane::kBulk, [&] { ran++; }).is_ok());
  // The lane is full: this submit must park until the gate opens and the
  // worker frees a slot, then succeed — backpressure, not an error.
  std::thread opener([&] {
    std::this_thread::sleep_for(20ms);
    gate.open();
  });
  EXPECT_TRUE(ex.submit(Lane::kBulk, [&] { ran++; }).is_ok());
  opener.join();
  ex.shutdown();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(ex.stats().shed_total(), 0u);
}

TEST(ExecutorLanes, BlockDeadlineShedsEventually) {
  ExecutorConfig config;
  config.workers = 1;
  config.bulk.capacity = 1;
  config.bulk.block_deadline = 30ms;
  Gate gate;
  Executor ex(config, "test.block_deadline");

  ASSERT_TRUE(ex.submit(Lane::kBulk, [&] { gate.wait(); }).is_ok());
  gate.await_entry();
  ASSERT_TRUE(ex.submit(Lane::kBulk, [] {}).is_ok());
  const Status refused = ex.submit(Lane::kBulk, [] {});
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ex.stats().lanes[static_cast<size_t>(Lane::kBulk)].shed, 1u);
  gate.open();
  ex.shutdown();
}

TEST(ExecutorLanes, CoalesceReplacesQueuedTaskInPlace) {
  ExecutorConfig config;
  config.workers = 1;
  Gate gate;
  std::atomic<int> value{0};
  std::atomic<int> runs{0};
  Executor ex(config, "test.coalesce");

  ASSERT_TRUE(ex.submit(Lane::kBulk, [&] { gate.wait(); }).is_ok());
  gate.await_entry();
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(ex.submit_coalesced(Lane::kControl, 42, [&value, &runs, i] {
                    value = i;
                    runs++;
                  }).is_ok());
  }
  gate.open();
  ex.shutdown();

  // Three admissions, ONE execution, and it ran the freshest fn.
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(value.load(), 3);
  const auto control = ex.stats().lanes[static_cast<size_t>(Lane::kControl)];
  EXPECT_EQ(control.coalesced, 2u);
  EXPECT_EQ(control.executed, 1u);
}

TEST(ExecutorLanes, CoalesceKeyZeroIsRejected) {
  Executor ex(ExecutorConfig{}, "test.coalesce_zero");
  EXPECT_EQ(ex.submit_coalesced(Lane::kControl, 0, [] {}).code(),
            StatusCode::kInvalidArgument);
  ex.shutdown();
}

TEST(ExecutorLanes, ControlReserveSurvivesSaturatedGeneralWorkers) {
  ExecutorConfig config;
  config.workers = 2;
  config.control_reserve = 1;  // worker 0 services ONLY the control lane
  Gate gate;
  std::atomic<bool> control_ran{false};
  Executor ex(config, "test.reserve");

  // Park the single general worker inside a bulk task.
  ASSERT_TRUE(ex.submit(Lane::kBulk, [&] { gate.wait(); }).is_ok());
  gate.await_entry();
  ASSERT_TRUE(ex.submit(Lane::kControl, [&] { control_ran = true; }).is_ok());
  // Control work must proceed on the reserved worker while bulk is stuck.
  for (int i = 0; i < 500 && !control_ran.load(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(control_ran.load());
  gate.open();
  ex.shutdown();
}

TEST(ExecutorLanes, EventWidthOneSerializesHandlers) {
  ExecutorConfig config;
  config.workers = 4;
  config.control_reserve = 0;
  config.event.width = 1;  // the §7 master handler thread
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  Executor ex(config, "test.width");

  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(ex.submit(Lane::kEvent, [&] {
                    const int now = ++running;
                    int expected = peak.load();
                    while (now > expected &&
                           !peak.compare_exchange_weak(expected, now)) {
                    }
                    std::this_thread::sleep_for(1ms);
                    --running;
                  }).is_ok());
  }
  ex.shutdown();
  EXPECT_EQ(peak.load(), 1);  // never two event handlers at once
  EXPECT_EQ(ex.stats().lanes[static_cast<size_t>(Lane::kEvent)].executed, 16u);
}

TEST(ExecutorLanes, ShutdownDrainsQueuedWorkAndRefusesNew) {
  ExecutorConfig config;
  config.workers = 2;
  std::atomic<int> ran{0};
  Executor ex(config, "test.drain");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ex.submit(Lane::kBulk, [&] { ran++; }).is_ok());
  }
  ex.shutdown();
  EXPECT_EQ(ran.load(), 100);  // drain-on-close: nothing queued is lost
  EXPECT_TRUE(ex.closed());
  EXPECT_EQ(ex.submit(Lane::kBulk, [&] { ran++; }).code(),
            StatusCode::kAborted);
  EXPECT_EQ(ran.load(), 100);
  ex.shutdown();  // idempotent
}

}  // namespace
}  // namespace doct
