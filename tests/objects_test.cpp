// Objects layer tests: entry registration/visibility, local and remote
// invocation (thread travel, attribute round-trip), call-chain maintenance,
// async claimable/oneway invocations, locator interaction with async spawns,
// and the persistent object store.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "objects/store.hpp"
#include "runtime/runtime.hpp"

namespace doct::objects {
namespace {

using namespace std::chrono_literals;
using runtime::Cluster;

Payload int_payload(std::int64_t v) {
  Writer w;
  w.put(v);
  return std::move(w).take();
}

std::int64_t int_value(const Payload& p) {
  Reader r(p);
  return r.get<std::int64_t>();
}

// Builds a simple counter object with public entries add/get and a private
// entry "secret".
std::shared_ptr<PassiveObject> make_counter() {
  auto obj = std::make_shared<PassiveObject>("counter");
  auto value = std::make_shared<std::atomic<std::int64_t>>(0);
  obj->define_entry("add", [value](CallCtx& ctx) -> Result<Payload> {
    *value += ctx.args.get<std::int64_t>();
    return int_payload(value->load());
  });
  obj->define_entry("get", [value](CallCtx&) -> Result<Payload> {
    return int_payload(value->load());
  });
  obj->define_entry(
      "secret", [](CallCtx&) -> Result<Payload> { return int_payload(42); },
      Visibility::kPrivate);
  return obj;
}

TEST(Objects, LocalInvocationFromPlainThread) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId oid = n0.objects.add_object(make_counter());
  auto result = n0.objects.invoke(oid, "add", int_payload(5));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(int_value(result.value()), 5);
}

TEST(Objects, ObjectIdEncodesHomeNode) {
  Cluster cluster(2);
  const ObjectId oid = cluster.node(1).objects.add_object(make_counter());
  EXPECT_EQ(ObjectManager::object_node(oid), cluster.node(1).id);
}

TEST(Objects, UnknownEntryAndObjectFail) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId oid = n0.objects.add_object(make_counter());
  EXPECT_EQ(n0.objects.invoke(oid, "nope", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(n0.objects.invoke(ObjectId{999}, "get", {}).status().code(),
            StatusCode::kNoSuchObject);
}

TEST(Objects, PrivateEntryRejected) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId oid = n0.objects.add_object(make_counter());
  EXPECT_EQ(n0.objects.invoke(oid, "secret", {}).status().code(),
            StatusCode::kPermissionDenied);
  // ...but the event-delivery path may call it.
  auto viaHandler = n0.objects.invoke_handler_entry(oid, "secret", {}, nullptr);
  ASSERT_TRUE(viaHandler.is_ok());
  EXPECT_EQ(int_value(viaHandler.value()), 42);
}

TEST(Objects, RemoteInvocationTravelsThread) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  const ObjectId oid = n1.objects.add_object(make_counter());

  std::atomic<std::int64_t> got{0};
  const ThreadId tid = n0.kernel.spawn([&] {
    auto result = n0.objects.invoke(oid, "add", int_payload(7));
    if (result.is_ok()) got = int_value(result.value());
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_EQ(got.load(), 7);
  EXPECT_EQ(n0.objects.stats().invocations_remote, 1u);
  EXPECT_EQ(n0.kernel.stats().migrations_out, 1u);
  EXPECT_EQ(n1.kernel.stats().migrations_in, 1u);
}

TEST(Objects, RemoteInvocationRequiresLogicalThread) {
  Cluster cluster(2);
  const ObjectId oid = cluster.node(1).objects.add_object(make_counter());
  EXPECT_EQ(cluster.node(0).objects.invoke(oid, "get", {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Objects, AttributesAttachedRemotelySurviveReturn) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  auto obj = std::make_shared<PassiveObject>("attacher");
  obj->define_entry("tag", [](CallCtx& ctx) -> Result<Payload> {
    // Executed at node 1 by the travelling thread: mutate its attributes.
    ctx.thread->with_attributes([](kernel::ThreadAttributes& a) {
      a.user["visited"] = "n1";
      a.handler_chain.push_back(kernel::HandlerRecord{
          HandlerId{77}, EventId{5}, kernel::HandlerKind::kPerThread,
          ObjectId{}, "remote_proc", ObjectId{}});
    });
    return Payload{};
  });
  const ObjectId oid = n1.objects.add_object(obj);

  std::atomic<bool> ok{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.objects.invoke(oid, "tag", {}).is_ok());
    // Back at node 0: the attribute changes must have come home with us.
    auto* ctx = kernel::Kernel::current();
    ok = ctx->attributes().user.at("visited") == "n1" &&
         ctx->attributes().handler_chain.size() == 1 &&
         ctx->attributes().handler_chain[0].entry == "remote_proc";
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_TRUE(ok.load());
}

TEST(Objects, CallChainTracksNesting) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  std::atomic<size_t> depth_inner{0};
  ObjectId inner_id, outer_id;

  auto inner = std::make_shared<PassiveObject>("inner");
  inner->define_entry("probe", [&](CallCtx& ctx) -> Result<Payload> {
    depth_inner = ctx.thread->with_attributes(
        [](kernel::ThreadAttributes& a) { return a.call_chain.size(); });
    return Payload{};
  });
  inner_id = n1.objects.add_object(inner);

  auto outer = std::make_shared<PassiveObject>("outer");
  outer->define_entry("run", [&](CallCtx& ctx) -> Result<Payload> {
    auto nested = ctx.manager.invoke(inner_id, "probe", {});
    if (!nested.is_ok()) return nested.status();
    return Payload{};
  });
  outer_id = n0.objects.add_object(outer);

  std::atomic<size_t> depth_after{99};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.objects.invoke(outer_id, "run", {}).is_ok());
    depth_after = kernel::Kernel::current()->with_attributes(
        [](kernel::ThreadAttributes& a) { return a.call_chain.size(); });
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_EQ(depth_inner.load(), 2u);  // outer + inner
  EXPECT_EQ(depth_after.load(), 0u);  // fully popped
}

TEST(Objects, ForcedRpcModeOnLocalObject) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId oid = n0.objects.add_object(make_counter());
  std::atomic<std::int64_t> got{0};
  const ThreadId tid = n0.kernel.spawn([&] {
    auto result = n0.objects.invoke(oid, "add", int_payload(3), InvokeMode::kRpc);
    if (result.is_ok()) got = int_value(result.value());
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_EQ(got.load(), 3);
  EXPECT_EQ(n0.objects.stats().invocations_remote, 1u);
}

TEST(Objects, DsmModeRunsLocallyAgainstSharedState) {
  // Counter state in a DSM segment, object replicated on both nodes; DSM-mode
  // invocation on node 1 must see writes made through node 0's replica.
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  const SegmentId seg{401};
  ASSERT_TRUE(n0.dsm.create_segment(seg, 1).is_ok());
  ASSERT_TRUE(n1.dsm.attach_segment(seg, n0.id, 1).is_ok());

  auto make_dsm_counter = [seg](dsm::DsmEngine& engine) {
    auto obj = std::make_shared<PassiveObject>("dsm_counter");
    obj->define_entry("add", [&engine, seg](CallCtx& ctx) -> Result<Payload> {
      auto current = engine.read(seg, 0, 8);
      if (!current.is_ok()) return current.status();
      Reader r(current.value());
      const auto v = r.get<std::int64_t>() + ctx.args.get<std::int64_t>();
      Writer w;
      w.put(v);
      const Status written = engine.write(seg, 0, std::move(w).take());
      if (!written.is_ok()) return written;
      return int_payload(v);
    });
    obj->define_entry("get", [&engine, seg](CallCtx&) -> Result<Payload> {
      auto current = engine.read(seg, 0, 8);
      if (!current.is_ok()) return current.status();
      Reader r(current.value());
      return int_payload(r.get<std::int64_t>());
    });
    return obj;
  };

  const ObjectId oid = n0.objects.add_object(make_dsm_counter(n0.dsm));
  ASSERT_TRUE(n1.objects.add_replica(oid, make_dsm_counter(n1.dsm)).is_ok());

  ASSERT_TRUE(
      n0.objects.invoke(oid, "add", int_payload(10), InvokeMode::kDsm).is_ok());
  auto via_n1 =
      n1.objects.invoke(oid, "get", {}, InvokeMode::kDsm);
  ASSERT_TRUE(via_n1.is_ok()) << via_n1.status().to_string();
  EXPECT_EQ(int_value(via_n1.value()), 10);
  EXPECT_EQ(n1.objects.stats().invocations_dsm, 1u);
  EXPECT_GE(n1.dsm.stats().read_faults, 1u);  // state came over DSM
}

TEST(Objects, AsyncInvocationClaimable) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  const ObjectId oid = cluster.node(1).objects.add_object(make_counter());
  std::atomic<std::int64_t> got{0};
  const ThreadId tid = n0.kernel.spawn([&] {
    auto pending = n0.objects.invoke_async(oid, "add", int_payload(9));
    ASSERT_TRUE(pending.is_ok()) << pending.status().to_string();
    auto result = pending.value().claim(5s);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    got = int_value(result.value());
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_EQ(got.load(), 9);
}

TEST(Objects, AsyncChildIsFindableByPathFollow) {
  // The system keeps track of claimable async invocations: path-following
  // must find the child thread at the object's node while it runs.
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  auto obj = std::make_shared<PassiveObject>("slow");
  obj->define_entry("wait", [&](CallCtx& ctx) -> Result<Payload> {
    entered = true;
    while (!release.load()) {
      if (!ctx.manager.kernel().sleep_for(1ms).is_ok()) break;
    }
    return Payload{};
  });
  const ObjectId oid = n1.objects.add_object(obj);

  std::atomic<bool> found{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    auto pending = n0.objects.invoke_async(oid, "wait", {});
    ASSERT_TRUE(pending.is_ok());
    while (!entered.load()) std::this_thread::sleep_for(1ms);
    // Find the child: it is the only thread present at node 1.
    const auto locals = n1.kernel.local_threads();
    ASSERT_EQ(locals.size(), 1u);
    auto located =
        n0.kernel.locate(locals[0], kernel::LocatorKind::kPathFollow);
    found = located.is_ok() && located.value() == n1.id;
    release = true;
    ASSERT_TRUE(pending.value().claim(5s).is_ok());
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_TRUE(found.load());
}

TEST(Objects, OnewayChildIsMissedByPathFollowButFoundByBroadcast) {
  // §7.1: non-claimable asynchronous invocations break the trail.
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  auto obj = std::make_shared<PassiveObject>("slow");
  obj->define_entry("wait", [&](CallCtx& ctx) -> Result<Payload> {
    entered = true;
    while (!release.load()) {
      if (!ctx.manager.kernel().sleep_for(1ms).is_ok()) break;
    }
    return Payload{};
  });
  const ObjectId oid = n1.objects.add_object(obj);

  std::atomic<bool> path_missed{false};
  std::atomic<bool> broadcast_found{false};
  std::atomic<bool> multicast_found{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.objects.invoke_oneway(oid, "wait", {}).is_ok());
    while (!entered.load()) std::this_thread::sleep_for(1ms);
    const auto locals = n1.kernel.local_threads();
    ASSERT_EQ(locals.size(), 1u);
    const ThreadId child = locals[0];
    // The child's tid is rooted at node 0, but node 0 has no TCB for it.
    EXPECT_EQ(IdGenerator::thread_root_node(child), n0.id);
    auto via_path = n0.kernel.locate(child, kernel::LocatorKind::kPathFollow);
    path_missed = !via_path.is_ok() &&
                  via_path.status().code() == StatusCode::kNoSuchThread;
    auto via_broadcast =
        n0.kernel.locate(child, kernel::LocatorKind::kBroadcast);
    broadcast_found = via_broadcast.is_ok() && via_broadcast.value() == n1.id;
    auto via_multicast =
        n0.kernel.locate(child, kernel::LocatorKind::kMulticast);
    multicast_found = via_multicast.is_ok() && via_multicast.value() == n1.id;
    release = true;
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  release = true;
  EXPECT_TRUE(path_missed.load());
  EXPECT_TRUE(broadcast_found.load());
  EXPECT_TRUE(multicast_found.load());
  // Let the child finish before teardown.
  for (int i = 0; i < 500 && !n1.kernel.local_threads().empty(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
}

TEST(Objects, ReplicaRegistrationErrors) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  EXPECT_EQ(n0.objects.add_replica(ObjectId{}, make_counter()).code(),
            StatusCode::kInvalidArgument);
  const ObjectId oid = n0.objects.add_object(make_counter());
  EXPECT_EQ(n0.objects.add_replica(oid, make_counter()).code(),
            StatusCode::kAlreadyExists);
}

// --- persistence (§3.1) --------------------------------------------------------

class PersistentNote : public PassiveObject {
 public:
  PersistentNote() : PassiveObject("note") {
    define_entry("set", [this](CallCtx& ctx) -> Result<Payload> {
      text_ = ctx.args.get_string();
      return Payload{};
    });
    define_entry("get", [this](CallCtx&) -> Result<Payload> {
      Writer w;
      w.put(text_);
      return std::move(w).take();
    });
  }

  void save_state(Writer& w) const override { w.put(text_); }
  void load_state(Reader& r) override { text_ = r.get_string(); }

 private:
  std::string text_;
};

TEST(ObjectStoreTest, DeactivateAndActivateRoundTrip) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  n0.factory.register_type("note",
                           [] { return std::make_shared<PersistentNote>(); });

  const ObjectId oid = n0.objects.add_object(std::make_shared<PersistentNote>());
  Writer w;
  w.put(std::string("remember me"));
  ASSERT_TRUE(n0.objects.invoke(oid, "set", std::move(w).take()).is_ok());

  ASSERT_TRUE(n0.store.deactivate(oid).is_ok());
  EXPECT_EQ(n0.objects.find(oid), nullptr);
  EXPECT_TRUE(n0.store.is_passive(oid));

  ASSERT_TRUE(n0.store.activate(oid).is_ok());
  auto got = n0.objects.invoke(oid, "get", {});
  ASSERT_TRUE(got.is_ok());
  Reader r(got.value());
  EXPECT_EQ(r.get_string(), "remember me");
}

TEST(ObjectStoreTest, ActivateWithoutFactoryFails) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId oid = n0.objects.add_object(std::make_shared<PersistentNote>());
  ASSERT_TRUE(n0.store.deactivate(oid).is_ok());
  EXPECT_EQ(n0.store.activate(oid).code(), StatusCode::kInvalidArgument);
}

TEST(ObjectStoreTest, DeactivateUnknownFails) {
  Cluster cluster(1);
  EXPECT_EQ(cluster.node(0).store.deactivate(ObjectId{42}).code(),
            StatusCode::kNoSuchObject);
}

TEST(ObjectStoreTest, FileBackendRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "doct_store_test";
  std::filesystem::remove_all(dir);
  FileBackend backend(dir);
  const ObjectId oid{123};
  ASSERT_TRUE(backend.put(oid, "note", {1, 2, 3}).is_ok());
  auto got = backend.get(oid);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().first, "note");
  EXPECT_EQ(got.value().second, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(backend.list().size(), 1u);
  ASSERT_TRUE(backend.erase(oid).is_ok());
  EXPECT_EQ(backend.get(oid).status().code(), StatusCode::kNoSuchObject);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace doct::objects
