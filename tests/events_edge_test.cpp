// Edge cases and failure paths of the event facility: sync timeouts against
// non-polling targets, empty groups, handlers that re-raise, delivery to
// terminated-but-running threads, event-block field coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "events/block.hpp"
#include "runtime/runtime.hpp"

namespace doct::events {
namespace {

using namespace std::chrono_literals;
using kernel::Verdict;
using runtime::Cluster;

TEST(EventsEdge, SyncRaiseTimesOutAgainstNonPollingTarget) {
  runtime::ClusterConfig config;
  config.node.events.sync_timeout = 100ms;
  Cluster cluster(1, config);
  auto& n0 = cluster.node(0);

  // The target never reaches a delivery point (plain sleeps, no kernel
  // calls) until released.
  std::atomic<bool> release{false};
  const ThreadId target = n0.kernel.spawn([&] {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  const EventId ev = cluster.registry().register_event("NEVER_POLLED");
  for (int i = 0; i < 500 && n0.kernel.local_threads().empty(); ++i) {
    std::this_thread::sleep_for(1ms);
  }

  std::atomic<bool> timed_out{false};
  const ThreadId raiser = n0.kernel.spawn([&] {
    auto verdict = n0.events.raise_and_wait(ev, target);
    timed_out = !verdict.is_ok() &&
                verdict.status().code() == StatusCode::kTimeout;
  });
  ASSERT_TRUE(n0.kernel.join_thread(raiser, 15s).is_ok());
  EXPECT_TRUE(timed_out.load());
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(target, 10s).is_ok());
}

TEST(EventsEdge, GroupRaiseWithNoMembersSucceedsQuietly) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  const GroupId empty = n0.kernel.create_group();
  const EventId ev = cluster.registry().register_event("INTO_THE_VOID");
  EXPECT_TRUE(n0.events.raise(ev, empty).is_ok());
  cluster.network().quiesce();
  EXPECT_EQ(n0.kernel.stats().notices_delivered, 0u);
}

TEST(EventsEdge, SyncGroupRaiseWithNoMembersTimesOut) {
  runtime::ClusterConfig config;
  config.node.events.sync_timeout = 80ms;
  Cluster cluster(1, config);
  auto& n0 = cluster.node(0);
  const GroupId empty = n0.kernel.create_group();
  const EventId ev = cluster.registry().register_event("VOID_SYNC");
  auto verdict = n0.events.raise_and_wait(ev, empty);
  EXPECT_EQ(verdict.status().code(), StatusCode::kTimeout);
}

TEST(EventsEdge, RaiseExceptionWithoutHandlerUsesDefault) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<bool> resumed{false};
  std::atomic<bool> terminated{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    // INTERRUPT defaults to ignore -> resume.
    auto a = n0.events.raise_exception(sys::kInterrupt, "soft");
    resumed = a.is_ok() && a.value() == Verdict::kResume;
    // DIVIDE_BY_ZERO defaults to terminate.
    auto b = n0.events.raise_exception(sys::kDivideByZero, "hard");
    terminated = b.is_ok() && b.value() == Verdict::kTerminate;
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
  EXPECT_TRUE(resumed.load());
  EXPECT_TRUE(terminated.load());
}

TEST(EventsEdge, HandlerMayRaiseFollowUpEventAtSelf) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<int> first_runs{0};
  std::atomic<int> second_runs{0};
  const EventId first = cluster.registry().register_event("FIRST");
  const EventId second = cluster.registry().register_event("SECOND");

  cluster.procedures().register_procedure("second_h",
                                          [&](PerThreadCallCtx&) {
                                            second_runs++;
                                            return Verdict::kResume;
                                          });
  cluster.procedures().register_procedure(
      "first_h", [&](PerThreadCallCtx& ctx) {
        first_runs++;
        // Re-raise at the same thread: must be queued and handled at a later
        // delivery point, not recursively inline.
        n0.events.raise(second, ctx.thread.tid());
        return Verdict::kResume;
      });

  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events.attach_handler(first, "first_h", OWN_CONTEXT).is_ok());
    ASSERT_TRUE(n0.events.attach_handler(second, "second_h", OWN_CONTEXT).is_ok());
    armed = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(n0.events.raise(first, tid).is_ok());
  for (int i = 0; i < 1000 && second_runs.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(first_runs.load(), 1);
  EXPECT_EQ(second_runs.load(), 1);
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
}

TEST(EventsEdge, EventBlockExposesAllNoticeFields) {
  kernel::EventNotice notice;
  notice.event = EventId{42};
  notice.event_name = "FULL";
  notice.target_thread = ThreadId{1};
  notice.target_group = GroupId{2};
  notice.target_object = ObjectId{3};
  notice.raiser = ThreadId{4};
  notice.raiser_node = NodeId{5};
  notice.synchronous = true;
  notice.wait_token = 6;
  notice.raised_in = ObjectId{7};
  notice.system_info = "pc=0x8";
  Writer w;
  w.put(std::string("payload"));
  notice.user_data = std::move(w).take();

  const EventBlock block{notice};
  EXPECT_EQ(block.event(), EventId{42});
  EXPECT_EQ(block.event_name(), "FULL");
  EXPECT_EQ(block.target_thread(), ThreadId{1});
  EXPECT_EQ(block.target_group(), GroupId{2});
  EXPECT_EQ(block.target_object(), ObjectId{3});
  EXPECT_EQ(block.raiser(), ThreadId{4});
  EXPECT_EQ(block.raiser_node(), NodeId{5});
  EXPECT_TRUE(block.synchronous());
  EXPECT_EQ(block.raised_in(), ObjectId{7});
  EXPECT_EQ(block.system_info(), "pc=0x8");
  auto r = block.user_reader();
  EXPECT_EQ(r.get_string(), "payload");

  // Round trip through the wire helpers.
  auto payload = block.to_payload();
  Reader reader(payload);
  EXPECT_EQ(EventBlock::from_payload(reader).notice(), notice);
}

TEST(EventsEdge, MissingPerThreadProcedureSkippedInChain) {
  // A handler record whose procedure isn't registered on this "binary" is
  // skipped (logged), and the chain continues to the next handler.
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<int> outer_runs{0};
  cluster.procedures().register_procedure("outer_ok",
                                          [&](PerThreadCallCtx&) {
                                            outer_runs++;
                                            return Verdict::kResume;
                                          });
  const EventId ev = cluster.registry().register_event("HALF_MISSING");
  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events.attach_handler(ev, "outer_ok", OWN_CONTEXT).is_ok());
    // Inject a record for a procedure that exists now but is replaced by a
    // missing name directly in the attributes (simulating a node that lacks
    // the mapped code).
    kernel::Kernel::current()->with_attributes([&](kernel::ThreadAttributes& a) {
      kernel::HandlerRecord record;
      record.id = HandlerId{9999};
      record.event = ev;
      record.kind = kernel::HandlerKind::kPerThread;
      record.entry = "not_registered_anywhere";
      a.handler_chain.push_back(record);
    });
    armed = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(n0.events.raise(ev, tid).is_ok());
  for (int i = 0; i < 1000 && outer_runs.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(outer_runs.load(), 1);  // fell through the broken record
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
}

TEST(EventsEdge, HandlerObjectGoneFallsThroughChain) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<int> fallback_runs{0};
  cluster.procedures().register_procedure("fallback",
                                          [&](PerThreadCallCtx&) {
                                            fallback_runs++;
                                            return Verdict::kResume;
                                          });
  auto doomed = std::make_shared<objects::PassiveObject>("doomed");
  doomed->define_entry(
      "h",
      [](objects::CallCtx&) -> Result<objects::Payload> {
        return objects::Payload{};
      },
      objects::Visibility::kPrivate);
  const ObjectId doomed_id = n0.objects.add_object(doomed);
  const EventId ev = cluster.registry().register_event("DOOMED_HANDLER");

  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events.attach_handler(ev, "fallback", OWN_CONTEXT).is_ok());
    ASSERT_TRUE(n0.events.attach_handler(ev, doomed_id, "h").is_ok());
    armed = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);
  // Remove the handler object, then raise: the object-entry record fails
  // (kNoSuchObject), and the chain falls through to the fallback proc.
  ASSERT_TRUE(n0.objects.remove_object(doomed_id).is_ok());
  ASSERT_TRUE(n0.events.raise(ev, tid).is_ok());
  for (int i = 0; i < 1000 && fallback_runs.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(fallback_runs.load(), 1);
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
}

TEST(EventsEdge, HandlerEntryReturningErrorFallsThrough) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<int> after{0};
  cluster.procedures().register_procedure("after_h", [&](PerThreadCallCtx&) {
    after++;
    return Verdict::kResume;
  });
  auto flaky = std::make_shared<objects::PassiveObject>("flaky");
  flaky->define_entry(
      "h",
      [](objects::CallCtx&) -> Result<objects::Payload> {
        return Status{StatusCode::kInternal, "handler blew up"};
      },
      objects::Visibility::kPrivate);
  const ObjectId flaky_id = n0.objects.add_object(flaky);
  const EventId ev = cluster.registry().register_event("FLAKY_HANDLER");

  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events.attach_handler(ev, "after_h", OWN_CONTEXT).is_ok());
    ASSERT_TRUE(n0.events.attach_handler(ev, flaky_id, "h").is_ok());
    armed = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(n0.events.raise(ev, tid).is_ok());
  for (int i = 0; i < 1000 && after.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(after.load(), 1);
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
}

TEST(EventsEdge, TerminatedThreadReportsDeadTargetBeforeExit) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  // A thread that marks itself terminated but keeps its body alive briefly.
  std::atomic<bool> marked{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    kernel::Kernel::current()->mark_terminated();
    marked = true;
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  while (!marked.load()) std::this_thread::sleep_for(1ms);
  const EventId ev = cluster.registry().register_event("TOO_LATE");
  EXPECT_EQ(n0.events.raise(ev, tid).code(), StatusCode::kDeadTarget);
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
}

TEST(EventsEdge, ObjectEventToUnknownObjectOnValidNode) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  // Object id encodes node 1 (valid) but was never registered: accepted for
  // dispatch, dropped at the handler with a warning; system stays healthy.
  const ObjectId ghost{(std::uint64_t{1} << 48) | 0xFFFF};
  EXPECT_TRUE(n0.events.raise(events::sys::kPing, ghost).is_ok());
  cluster.network().quiesce();
  // And the node still works.
  const ObjectId real =
      n0.objects.add_object(std::make_shared<objects::PassiveObject>("ok"));
  EXPECT_TRUE(n0.events.raise(events::sys::kPing, real).is_ok());
}

}  // namespace
}  // namespace doct::events
