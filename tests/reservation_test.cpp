// Reservation-scheduled handler parallelism (DESIGN.md §11): the executor
// admits a task only when every reservation key it carries is unclaimed,
// holds the keys while it runs, and keeps per-key FIFO order — so lifting
// the event lane above width 1 parallelizes disjoint targets WITHOUT
// changing the paper's observable per-target delivery semantics.
//
// Two layers of proof:
//  * executor-level: mutual exclusion per key, real parallelism across
//    disjoint keys, per-key FIFO (including the multi-key shadow-claim
//    case), inheritance for nested submissions, and the reservations-off
//    clamp back to serial width 1;
//  * system-level seeded property test: a storm of object-targeted raises
//    at every width must (a) never overlap two handlers on one object and
//    (b) deliver to each object in exactly the width-1 (raise) order.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "events/block.hpp"
#include "events/event_system.hpp"
#include "events/registry.hpp"
#include "exec/executor.hpp"
#include "runtime/runtime.hpp"

namespace doct::events {
namespace {

using namespace std::chrono_literals;
using exec::Executor;
using exec::ExecutorConfig;
using exec::Lane;
using exec::ReservationSet;
using kernel::Verdict;
using runtime::Cluster;

rpc::Payload verdict_bytes(Verdict v) {
  return rpc::Payload{static_cast<std::uint8_t>(v)};
}

// This suite drives width/reservations through explicit configs; the CI
// ablation env hooks (which override config in the Executor ctor) would
// fight the matrix of widths exercised here, so clear them up front.
class ClearAblationEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    unsetenv("DOCT_EVENT_WIDTH");
    unsetenv("DOCT_RESERVATIONS");
  }
};
const auto* const kAblationEnvCleared =
    ::testing::AddGlobalTestEnvironment(new ClearAblationEnv);

// Seed for the property sweep; override like the chaos suite:
//   DOCT_RESERVATION_SEED=42 ./tests/reservation_test
std::uint64_t suite_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("DOCT_RESERVATION_SEED");
    const std::uint64_t value =
        env != nullptr ? std::strtoull(env, nullptr, 10) : 7;
    std::fprintf(stderr, "[reservation] DOCT_RESERVATION_SEED=%llu\n",
                 static_cast<unsigned long long>(value));
    return value;
  }();
  return seed;
}

ExecutorConfig wide_config(std::size_t width) {
  ExecutorConfig config;
  config.workers = 6;
  config.event.width = width;
  return config;
}

// Tracks, per key, how many tasks currently claim to hold it; records the
// worst overlap ever observed.
class OverlapMonitor {
 public:
  void enter(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    const int now = ++active_[key];
    worst_ = std::max(worst_, now);
  }
  void leave(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mu_);
    --active_[key];
  }
  [[nodiscard]] int worst() const {
    std::lock_guard<std::mutex> lock(mu_);
    return worst_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, int> active_;
  int worst_ = 0;
};

TEST(ReservationExecutor, OverlappingKeysNeverRunConcurrently) {
  Executor ex(wide_config(4));
  OverlapMonitor monitor;
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(ex.submit(Lane::kEvent, ReservationSet{42},
                          [&] {
                            monitor.enter(42);
                            std::this_thread::sleep_for(100us);
                            monitor.leave(42);
                            done.fetch_add(1);
                          })
                    .is_ok());
  }
  ex.shutdown();
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_EQ(monitor.worst(), 1);
  EXPECT_EQ(ex.stats().reservation_acquired,
            static_cast<std::uint64_t>(kTasks));
}

TEST(ReservationExecutor, DisjointKeysRunInParallel) {
  Executor ex(wide_config(4));
  std::mutex mu;
  int running = 0;
  int peak = 0;
  std::atomic<int> done{0};
  constexpr int kKeys = 4;
  constexpr int kPerKey = 8;
  for (int round = 0; round < kPerKey; ++round) {
    for (std::uint64_t key = 1; key <= kKeys; ++key) {
      ASSERT_TRUE(ex.submit(Lane::kEvent, ReservationSet{key},
                            [&] {
                              {
                                std::lock_guard<std::mutex> lock(mu);
                                peak = std::max(peak, ++running);
                              }
                              std::this_thread::sleep_for(1ms);
                              {
                                std::lock_guard<std::mutex> lock(mu);
                                --running;
                              }
                              done.fetch_add(1);
                            })
                      .is_ok());
    }
  }
  ex.shutdown();
  EXPECT_EQ(done.load(), kKeys * kPerKey);
  // Four disjoint keys on a width-4 lane: at least two must have been in
  // flight at once (scheduling noise keeps us from asserting exactly 4).
  EXPECT_GE(peak, 2);
}

TEST(ReservationExecutor, PerKeyFifoOrderIsPreserved) {
  Executor ex(wide_config(4));
  std::mutex mu;
  std::vector<int> order;
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(ex.submit(Lane::kEvent, ReservationSet{7},
                          [&, i] {
                            std::lock_guard<std::mutex> lock(mu);
                            order.push_back(i);
                          })
                    .is_ok());
  }
  ex.shutdown();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

// The shadow-claim rule: a task whose keys overlap an earlier BLOCKED task
// may not overtake it.  T1{a,b} waits on `a` (held by a running task); then
// T2{b} — though `b` is free — must still run after T1.
TEST(ReservationExecutor, BlockedTaskIsNotOvertakenOnItsOtherKeys) {
  Executor ex(wide_config(4));
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<std::string> order;

  ASSERT_TRUE(ex.submit(Lane::kEvent, ReservationSet{1},
                        [&] {
                          std::unique_lock<std::mutex> lock(mu);
                          cv.wait(lock, [&] { return release; });
                          order.push_back("holder");
                        })
                  .is_ok());
  // Give the holder time to claim key 1.
  std::this_thread::sleep_for(20ms);
  ASSERT_TRUE(ex.submit(Lane::kEvent, ReservationSet{1, 2},
                        [&] {
                          std::lock_guard<std::mutex> lock(mu);
                          order.push_back("t1");
                        })
                  .is_ok());
  ASSERT_TRUE(ex.submit(Lane::kEvent, ReservationSet{2},
                        [&] {
                          std::lock_guard<std::mutex> lock(mu);
                          order.push_back("t2");
                        })
                  .is_ok());
  // T2 must not have run while T1 sits blocked behind the holder.
  std::this_thread::sleep_for(50ms);
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(order.empty());
    release = true;
  }
  cv.notify_all();
  ex.shutdown();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "holder");
  EXPECT_EQ(order[1], "t1");
  EXPECT_EQ(order[2], "t2");
  EXPECT_GE(ex.stats().reservation_conflicts, 2u);
}

TEST(ReservationExecutor, ReservationsOffClampsEventLaneSerial) {
  ExecutorConfig config = wide_config(4);
  config.reservations = false;
  Executor ex(config);
  EXPECT_EQ(ex.config().event.width, 1u);

  // Even keyless tasks stay serial: the clamp IS the §7 master handler.
  std::mutex mu;
  int running = 0;
  int peak = 0;
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(ex.submit(Lane::kEvent,
                          [&] {
                            {
                              std::lock_guard<std::mutex> lock(mu);
                              peak = std::max(peak, ++running);
                            }
                            std::this_thread::sleep_for(500us);
                            {
                              std::lock_guard<std::mutex> lock(mu);
                              --running;
                            }
                            done.fetch_add(1);
                          })
                    .is_ok());
  }
  ex.shutdown();
  EXPECT_EQ(done.load(), 32);
  EXPECT_EQ(peak, 1);
}

TEST(ReservationExecutor, NestedSubmissionSeesParentKeys) {
  Executor ex(wide_config(4));
  ReservationSet seen;
  std::atomic<bool> done{false};
  ASSERT_TRUE(ex.submit(Lane::kEvent, ReservationSet{11, 22},
                        [&] {
                          if (const ReservationSet* keys =
                                  Executor::current_reservations()) {
                            seen = *keys;
                          }
                          done = true;
                        })
                  .is_ok());
  while (!done.load()) std::this_thread::sleep_for(1ms);
  EXPECT_EQ(Executor::current_reservations(), nullptr);
  ex.shutdown();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 11u);
  EXPECT_EQ(seen[1], 22u);
}

TEST(ReservationExecutor, KeysSerializeAcrossLanes) {
  // A control-class and an ordinary event on the same object must still
  // serialize: the claimed-key set spans lanes.
  Executor ex(wide_config(4));
  OverlapMonitor monitor;
  std::atomic<int> done{0};
  for (int i = 0; i < 60; ++i) {
    const Lane lane = i % 2 == 0 ? Lane::kControl : Lane::kEvent;
    ASSERT_TRUE(ex.submit(lane, ReservationSet{5},
                          [&] {
                            monitor.enter(5);
                            std::this_thread::sleep_for(200us);
                            monitor.leave(5);
                            done.fetch_add(1);
                          })
                    .is_ok());
  }
  ex.shutdown();
  EXPECT_EQ(done.load(), 60);
  EXPECT_EQ(monitor.worst(), 1);
}

// --- key derivation ---------------------------------------------------------

TEST(ReservationKeys, TagSaltedAndNonZero) {
  EXPECT_NE(reservation_key(ObjectId{5}), reservation_key(ThreadId{5}));
  EXPECT_NE(reservation_key(ObjectId{5}), reservation_key(GroupId{5}));
  EXPECT_NE(reservation_key(ObjectId{5}), reservation_key(ObjectId{6}));
  EXPECT_EQ(reservation_key(ObjectId{5}), reservation_key(ObjectId{5}));
  EXPECT_NE(reservation_key(ObjectId{0}), 0u);
  EXPECT_NE(reservation_key(std::string("txn")), 0u);
  EXPECT_NE(reservation_key(std::string("txn")),
            reservation_key(std::string("lifecycle")));
}

TEST(ReservationKeys, SerialGroupRegistry) {
  EventRegistry registry;
  const EventId a = registry.register_event("COMMIT");
  const EventId b = registry.register_event("ROLLBACK");
  const EventId c = registry.register_event("UNRELATED");
  EXPECT_EQ(registry.serial_group_key(a), 0u);
  registry.set_serial_group(a, "txn");
  registry.set_serial_group(b, "txn");
  EXPECT_NE(registry.serial_group_key(a), 0u);
  EXPECT_EQ(registry.serial_group_key(a), registry.serial_group_key(b));
  EXPECT_EQ(registry.serial_group_key(c), 0u);
  EXPECT_EQ(registry.serial_group_key(EventId{9999}), 0u);
}

// --- system-level property: semantics are width-invariant -------------------

struct ObjectLog {
  std::mutex mu;
  std::vector<std::uint32_t> seqs;  // payload sequence numbers, in
                                    // execution order
  std::atomic<int> in_flight{0};
  std::atomic<int> worst_overlap{0};
};

// Runs `raises_per_object` seeded raises at `num_objects` objects on one
// node with the given event width and returns the per-object execution
// order.  Handlers detect overlap themselves.
std::vector<std::vector<std::uint32_t>> run_storm(std::size_t width,
                                                  bool reservations,
                                                  std::uint64_t seed,
                                                  int num_objects,
                                                  int raises_per_object) {
  runtime::ClusterConfig config;
  config.node.kernel.executor.workers = 8;
  config.node.kernel.executor.event.width = width;
  config.node.kernel.executor.reservations = reservations;
  // The storm is bursty; keep the lane unbounded so nothing sheds and the
  // execution log stays comparable across widths.
  config.node.kernel.executor.event.capacity = 0;
  Cluster cluster(1, config);
  auto& n0 = cluster.node(0);

  auto logs = std::make_shared<std::vector<ObjectLog>>(num_objects);
  std::vector<ObjectId> oids;
  const EventId event = cluster.registry().register_event("RESV_PROP");
  for (int i = 0; i < num_objects; ++i) {
    auto object = std::make_shared<objects::PassiveObject>("resv_target");
    ObjectLog* log = &(*logs)[i];
    object->define_entry(
        "on_event",
        // `logs` is captured to pin the log vector: the drain loop below
        // observes the seq push (the handler's second-to-last write) and
        // may let run_storm return while the final in_flight decrement is
        // still executing — the entry lambda outlives that window, the
        // local shared_ptr does not.
        [logs, log](objects::CallCtx& ctx) -> Result<objects::Payload> {
          const int now = log->in_flight.fetch_add(1) + 1;
          int worst = log->worst_overlap.load();
          while (now > worst &&
                 !log->worst_overlap.compare_exchange_weak(worst, now)) {
          }
          EventBlock block = EventBlock::from_ctx(ctx);
          auto r = block.user_reader();
          const auto seq = r.get<std::uint32_t>();
          {
            std::lock_guard<std::mutex> lock(log->mu);
            log->seqs.push_back(seq);
          }
          log->in_flight.fetch_sub(1);
          return verdict_bytes(Verdict::kResume);
        },
        objects::Visibility::kPrivate);
    object->define_handler("RESV_PROP", "on_event");
    oids.push_back(n0.objects.add_object(object));
  }

  // Seeded interleaving: raise order across objects is shuffled, but the
  // per-object sequence numbers are monotone — exactly what the handler
  // log must reproduce.
  SplitMix64 rng(seed);
  std::vector<std::uint32_t> next_seq(num_objects, 0);
  std::vector<int> schedule;
  for (int i = 0; i < num_objects; ++i) {
    schedule.insert(schedule.end(), raises_per_object, i);
  }
  for (std::size_t i = schedule.size(); i > 1; --i) {
    std::swap(schedule[i - 1], schedule[rng.below(i)]);
  }
  for (const int target : schedule) {
    Writer w;
    w.put(next_seq[target]++);
    EXPECT_TRUE(
        n0.events.raise(event, oids[target], std::move(w).take()).is_ok());
  }

  // Drain: every raise must be handled before the cluster tears down.
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  for (int i = 0; i < num_objects; ++i) {
    while (std::chrono::steady_clock::now() < deadline) {
      {
        std::lock_guard<std::mutex> lock((*logs)[i].mu);
        if ((*logs)[i].seqs.size() ==
            static_cast<std::size_t>(raises_per_object)) {
          break;
        }
      }
      std::this_thread::sleep_for(1ms);
    }
    {
      std::lock_guard<std::mutex> lock((*logs)[i].mu);
      EXPECT_EQ((*logs)[i].seqs.size(),
                static_cast<std::size_t>(raises_per_object))
          << "object " << i << " never received all raises";
    }
  }

  std::vector<std::vector<std::uint32_t>> out;
  for (int i = 0; i < num_objects; ++i) {
    EXPECT_LE((*logs)[i].worst_overlap.load(), 1)
        << "two handlers overlapped on object " << i << " at width "
        << width;
    std::lock_guard<std::mutex> lock((*logs)[i].mu);
    out.push_back((*logs)[i].seqs);
  }
  return out;
}

class ReservationProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReservationProperty, WidthInvariantPerObjectOrderAndNoOverlap) {
  const std::size_t width = GetParam();
  constexpr int kObjects = 6;
  constexpr int kRaises = 120;
  const auto orders =
      run_storm(width, /*reservations=*/true, suite_seed(), kObjects, kRaises);
  // Same-target delivery order must match the width-1 (= raise) order: each
  // object's log is exactly 0..kRaises-1.
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_EQ(orders[i].size(), static_cast<std::size_t>(kRaises));
    for (int s = 0; s < kRaises; ++s) {
      ASSERT_EQ(orders[i][s], static_cast<std::uint32_t>(s))
          << "object " << i << " delivered out of order at width " << width;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ReservationProperty,
                         ::testing::Values<std::size_t>(1, 2, 4, 8));

TEST(ReservationProperty, ReservationsOffStaysSerialAndOrdered) {
  const auto orders = run_storm(/*width=*/4, /*reservations=*/false,
                                suite_seed(), 4, 60);
  for (const auto& order : orders) {
    ASSERT_EQ(order.size(), 60u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  }
}

}  // namespace
}  // namespace doct::events
