// Observability integration tests: causal tracing across nodes, the unified
// metrics snapshot, and the Chrome trace export.
//
// The obs layer is process-global and off by default; the fixture enables it
// per test and restores the disabled state afterwards (every ctest entry is
// its own process, so tests cannot poison each other).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "kernel/event_notice.hpp"
#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/runtime.hpp"
#include "services/monitor/monitor.hpp"

namespace doct {
namespace {

using namespace std::chrono_literals;
using events::OWN_CONTEXT;
using events::PerThreadCallCtx;
using kernel::Verdict;
using runtime::Cluster;
using runtime::ClusterConfig;

// Spans belonging to one trace, from the global tracer.
std::vector<obs::Span> spans_for(std::uint64_t trace_id) {
  std::vector<obs::Span> out;
  for (const obs::Span& span : obs::tracer().snapshot()) {
    if (span.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

std::set<std::string> span_names(const std::vector<obs::Span>& spans) {
  std::set<std::string> names;
  for (const obs::Span& span : spans) names.insert(span.name);
  return names;
}

std::set<std::uint64_t> span_nodes(const std::vector<obs::Span>& spans) {
  std::set<std::uint64_t> nodes;
  for (const obs::Span& span : spans) nodes.insert(span.node);
  return nodes;
}

// The trace id of the (single expected) "raise" span carrying `event_name`.
std::uint64_t find_raise_trace(const std::string& event_name) {
  std::uint64_t found = 0;
  for (const obs::Span& span : obs::tracer().snapshot()) {
    if (std::string(span.name) == "raise" && span.detail == event_name) {
      if (found != 0 && found != span.trace_id) return 0;  // ambiguous
      found = span.trace_id;
    }
  }
  return found;
}

// Late spans (resume runs on an RPC serve thread after the waiter wakes)
// need a grace period before assertions.
bool wait_for_span_names(std::uint64_t trace_id,
                         const std::set<std::string>& wanted) {
  for (int i = 0; i < 2000; ++i) {
    const auto names = span_names(spans_for(trace_id));
    bool all = true;
    for (const auto& name : wanted) {
      if (names.count(name) == 0) all = false;
    }
    if (all) return true;
    std::this_thread::sleep_for(1ms);
  }
  return false;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::metrics().reset();
    obs::tracer().clear();
    obs::set_metrics_enabled(true);
    obs::set_tracing_enabled(true);
  }
  void TearDown() override {
    obs::set_metrics_enabled(false);
    obs::set_tracing_enabled(false);
    obs::tracer().clear();
    obs::metrics().reset();
  }
};

TEST(Obs, DisabledByDefault) {
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_FALSE(obs::tracing_enabled());
  // With tracing off and no ambient context, a guard is inert: no span is
  // recorded and no context installed.
  {
    obs::SpanGuard guard("raise", 1, obs::kMintTrace, "NOPE");
    EXPECT_FALSE(guard.active());
    EXPECT_FALSE(obs::current_context().valid());
  }
  EXPECT_TRUE(obs::tracer().snapshot().empty());
}

TEST(Obs, EventNoticeCarriesTraceOnTheWire) {
  kernel::EventNotice notice;
  notice.event = EventId{7};
  notice.event_name = "TRACED";
  notice.target_thread = ThreadId{42};
  notice.raiser_node = NodeId{1};
  notice.user_data = {1, 2, 3};
  notice.trace_id = 0xABCDEF;
  notice.parent_span = 0x1234;
  Writer w;
  notice.serialize(w);
  const std::vector<std::uint8_t> bytes = std::move(w).take();
  Reader r(bytes);
  const kernel::EventNotice back = kernel::EventNotice::deserialize(r);
  EXPECT_EQ(back, notice);
  EXPECT_EQ(back.trace_id, 0xABCDEFu);
  EXPECT_EQ(back.parent_span, 0x1234u);
}

// The tentpole acceptance scenario: a synchronous raise from node 0 to a
// thread on node 1 yields ONE trace id whose spans cover the whole life of
// the event — raise (n0), wire, deliver + handle (n1), resume (n0).
TEST_F(ObsTest, CrossNodeSyncRaiseProducesOneTrace) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  cluster.procedures().register_procedure(
      "ack", [](PerThreadCallCtx&) { return Verdict::kResume; });
  const EventId ev = cluster.registry().register_event("OBS_SYNC");

  std::atomic<bool> ready{false};
  std::atomic<bool> release{false};
  const ThreadId target = n1.kernel.spawn([&] {
    ASSERT_TRUE(n1.events.attach_handler(ev, "ack", OWN_CONTEXT).is_ok());
    ready = true;
    while (!release.load()) {
      if (!n1.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!ready.load()) std::this_thread::sleep_for(1ms);

  std::atomic<bool> resumed{false};
  const ThreadId raiser = n0.kernel.spawn([&] {
    auto verdict = n0.events.raise_and_wait(ev, target);
    resumed = verdict.is_ok() && verdict.value() == Verdict::kResume;
  });
  ASSERT_TRUE(n0.kernel.join_thread(raiser, 30s).is_ok());
  release = true;
  ASSERT_TRUE(n1.kernel.join_thread(target, 10s).is_ok());
  ASSERT_TRUE(resumed.load());

  const std::uint64_t trace = find_raise_trace("OBS_SYNC");
  ASSERT_NE(trace, 0u);
  ASSERT_TRUE(wait_for_span_names(
      trace, {"raise", "wire", "deliver", "handle", "resume"}))
      << "spans seen: " << ::testing::PrintToString(
             span_names(spans_for(trace)));
  // The trace crosses the node boundary: spans on both node tracks.
  const auto nodes = span_nodes(spans_for(trace));
  EXPECT_TRUE(nodes.count(n0.id.value()) == 1 &&
              nodes.count(n1.id.value()) == 1)
      << "nodes: " << ::testing::PrintToString(nodes);
  // Exactly one trace was minted for the whole round trip.
  for (const obs::Span& span : spans_for(trace)) {
    EXPECT_EQ(span.trace_id, trace);
  }
}

// Chaos-layer interaction: the deliver RPC is cut by a partition mid-raise;
// the rpc retry layer retransmits after heal.  Retries reuse the original
// trace context, so the healed delivery still belongs to the same trace.
TEST_F(ObsTest, TraceSurvivesPartitionAndRetry) {
  ClusterConfig config;
  config.node.rpc.max_retries = 10;
  config.node.rpc.retry_base_delay = 25ms;
  config.node.rpc.retry_max_delay = 100ms;
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  cluster.procedures().register_procedure(
      "ack", [](PerThreadCallCtx&) { return Verdict::kResume; });
  const EventId ev = cluster.registry().register_event("OBS_RETRY");

  std::atomic<bool> ready{false};
  std::atomic<bool> release{false};
  const ThreadId target = n1.kernel.spawn([&] {
    ASSERT_TRUE(n1.events.attach_handler(ev, "ack", OWN_CONTEXT).is_ok());
    ready = true;
    while (!release.load()) {
      if (!n1.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!ready.load()) std::this_thread::sleep_for(1ms);

  // Warm raise: populates node 0's location cache so the partitioned raise
  // goes straight to the deliver RPC (no locate storm to also retry).
  const ThreadId warm = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events.raise_and_wait(ev, target).is_ok());
  });
  ASSERT_TRUE(n0.kernel.join_thread(warm, 30s).is_ok());
  obs::tracer().clear();  // only the partitioned raise below matters
  n0.rpc.reset_stats();

  cluster.network().partition(n0.id, n1.id);
  std::atomic<bool> resumed{false};
  const ThreadId raiser = n0.kernel.spawn([&] {
    auto verdict = n0.events.raise_and_wait(ev, target);
    resumed = verdict.is_ok() && verdict.value() == Verdict::kResume;
  });
  std::this_thread::sleep_for(100ms);
  cluster.network().heal(n0.id, n1.id);
  ASSERT_TRUE(n0.kernel.join_thread(raiser, 30s).is_ok());
  release = true;
  ASSERT_TRUE(n1.kernel.join_thread(target, 10s).is_ok());
  ASSERT_TRUE(resumed.load());
  EXPECT_GE(n0.rpc.stats().retries_sent, 1u);

  const std::uint64_t trace = find_raise_trace("OBS_RETRY");
  ASSERT_NE(trace, 0u) << "retransmissions minted extra traces";
  ASSERT_TRUE(wait_for_span_names(
      trace, {"raise", "wire", "deliver", "handle", "resume"}))
      << "spans seen: " << ::testing::PrintToString(
             span_names(spans_for(trace)));
  EXPECT_GE(span_nodes(spans_for(trace)).size(), 2u);
}

// One snapshot_json() document covers every layer: net counters + transit
// histogram, per-node rpc/kernel/events/objects sources, and at least one
// service (the heartbeat failure detector).
TEST_F(ObsTest, ClusterMetricsSnapshotCoversAllLayers) {
  ClusterConfig config;
  config.node.health.enabled = true;
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  // Drive one cross-node invocation so counters move.
  auto obj = std::make_shared<objects::PassiveObject>("probe");
  obj->define_entry("noop", [](objects::CallCtx&) -> Result<objects::Payload> {
    return objects::Payload{};
  });
  const ObjectId oid = n1.objects.add_object(obj);
  const ThreadId tid = n0.kernel.spawn(
      [&] { ASSERT_TRUE(n0.objects.invoke(oid, "noop", {}).is_ok()); });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 30s).is_ok());

  const std::string json = cluster.metrics_json();
  const std::string p0 = "node" + std::to_string(n0.id.value());
  const std::string p1 = "node" + std::to_string(n1.id.value());
  for (const std::string& key : {
           std::string("\"net.sent\""),
           std::string("\"net.transit_us\""),
           std::string("\"rpc.call_us\""),
           std::string("\"kernel.deliver_us\""),
           std::string("\"events.sync_wait_us\""),
           std::string("\"events.handle_us\""),
           "\"" + p0 + ".rpc.retries_sent\"",
           "\"" + p1 + ".rpc.requests_executed\"",
           "\"" + p0 + ".kernel.migrations_out\"",
           "\"" + p1 + ".kernel.migrations_in\"",
           "\"" + p0 + ".location_cache.hits\"",
           "\"" + p0 + ".events.raises_async\"",
           "\"" + p0 + ".objects.invocations_remote\"",
           "\"" + p0 + ".health.heartbeats_sent\"",
       }) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key
                                                 << " in:\n" << json;
  }
  // Counters actually moved: the invoke sent messages.
  EXPECT_EQ(json.find("\"net.sent\":0,"), std::string::npos);
}

// The Chrome trace export has the structure Perfetto expects: one metadata
// record per node and complete ("X") events with the trace ids in args.
TEST_F(ObsTest, ChromeTraceExportShape) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  cluster.procedures().register_procedure(
      "ack", [](PerThreadCallCtx&) { return Verdict::kResume; });
  const EventId ev = cluster.registry().register_event("OBS_EXPORT");
  std::atomic<bool> ready{false};
  std::atomic<bool> release{false};
  const ThreadId target = n1.kernel.spawn([&] {
    ASSERT_TRUE(n1.events.attach_handler(ev, "ack", OWN_CONTEXT).is_ok());
    ready = true;
    while (!release.load()) {
      if (!n1.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!ready.load()) std::this_thread::sleep_for(1ms);
  const ThreadId raiser = n0.kernel.spawn(
      [&] { ASSERT_TRUE(n0.events.raise_and_wait(ev, target).is_ok()); });
  ASSERT_TRUE(n0.kernel.join_thread(raiser, 30s).is_ok());
  release = true;
  ASSERT_TRUE(n1.kernel.join_thread(target, 10s).is_ok());

  const std::string json = cluster.trace_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  // Spans landed on both node tracks.
  EXPECT_NE(json.find("\"pid\":" + std::to_string(n0.id.value()) + ","),
            std::string::npos);
  EXPECT_NE(json.find("\"pid\":" + std::to_string(n1.id.value()) + ","),
            std::string::npos);
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
}

// Golden structural check on the export: the document parses as JSON (via
// the obs mini-reader), span ids are unique, and every child whose parent
// lives on the same node nests inside the parent's time window (small slack
// for clock reads on either side of a queue hop).  scripts/check_trace.py
// applies the same rules to the example/multiprocess exports under ctest;
// this covers the in-process path without leaving the test binary.
TEST_F(ObsTest, ChromeTraceExportParsesAndNests) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  cluster.procedures().register_procedure(
      "ack", [](PerThreadCallCtx&) { return Verdict::kResume; });
  const EventId ev = cluster.registry().register_event("OBS_NEST");
  std::atomic<bool> ready{false};
  std::atomic<bool> release{false};
  const ThreadId target = n1.kernel.spawn([&] {
    ASSERT_TRUE(n1.events.attach_handler(ev, "ack", OWN_CONTEXT).is_ok());
    ready = true;
    while (!release.load()) {
      if (!n1.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!ready.load()) std::this_thread::sleep_for(1ms);
  const ThreadId raiser = n0.kernel.spawn([&] {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(n0.events.raise_and_wait(ev, target).is_ok());
    }
  });
  ASSERT_TRUE(n0.kernel.join_thread(raiser, 30s).is_ok());
  release = true;
  ASSERT_TRUE(n1.kernel.join_thread(target, 10s).is_ok());

  auto parsed = obs::parse_json(cluster.trace_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const obs::JsonValue* events = parsed.value().find("traceEvents");
  ASSERT_NE(events, nullptr);

  struct Row {
    double ts, dur, pid;
    std::string trace, parent;
  };
  std::map<std::string, Row> by_id;
  for (const obs::JsonValue& event : events->array) {
    const obs::JsonValue* ph = event.find("ph");
    if (ph == nullptr || ph->string != "X") continue;
    const obs::JsonValue* args = event.find("args");
    ASSERT_NE(args, nullptr);
    const std::string span_id = args->find("span_id")->string;
    ASSERT_EQ(by_id.count(span_id), 0u) << "duplicate span id " << span_id;
    by_id[span_id] = Row{event.num_or("ts", 0), event.num_or("dur", 0),
                         event.num_or("pid", 0), args->find("trace_id")->string,
                         args->find("parent")->string};
  }
  ASSERT_GE(by_id.size(), 3u);

  constexpr double kSlackUs = 1000;
  int contained = 0;
  for (const auto& [span_id, row] : by_id) {
    if (row.parent == "0") continue;
    auto it = by_id.find(row.parent);
    if (it == by_id.end() || it->second.pid != row.pid) continue;
    EXPECT_EQ(row.trace, it->second.trace) << span_id;
    EXPECT_GE(row.ts, it->second.ts - kSlackUs) << span_id;
    EXPECT_LE(row.ts + row.dur, it->second.ts + it->second.dur + kSlackUs)
        << span_id;
    ++contained;
  }
  EXPECT_GE(contained, 1) << "no same-node parent/child pair to validate";
}

// §6.2 monitoring as an application: the monitor server serves both
// snapshots as ordinary invocation payloads, pulled from another node.
TEST_F(ObsTest, MonitorServesMetricsAndTraceSnapshots) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  const ObjectId server = n0.objects.add_object(services::MonitorServer::make());
  services::MonitorClient client(n1.events, n1.objects, server);

  std::string metrics_doc;
  std::string trace_doc;
  const ThreadId tid = n1.kernel.spawn([&] {
    auto metrics = client.metrics_json();
    ASSERT_TRUE(metrics.is_ok()) << metrics.status().to_string();
    metrics_doc = metrics.value();
    auto trace = client.trace_json();
    ASSERT_TRUE(trace.is_ok()) << trace.status().to_string();
    trace_doc = trace.value();
  });
  ASSERT_TRUE(n1.kernel.join_thread(tid, 30s).is_ok());

  EXPECT_NE(metrics_doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics_doc.find("\"histograms\""), std::string::npos);
  // The pull itself was a traced cross-node invocation, so by the time the
  // trace snapshot is fetched the buffer is non-trivial.
  EXPECT_EQ(trace_doc.rfind("{\"traceEvents\":[", 0), 0u);
}

}  // namespace
}  // namespace doct
