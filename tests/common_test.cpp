// Unit tests for src/common: ids, Result/Status, serialization, queue, clock,
// thread pool, rng.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/id_gen.hpp"
#include "common/ids.hpp"
#include "common/queue.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/thread_pool.hpp"

namespace doct {
namespace {

TEST(TypedId, DefaultIsInvalid) {
  ThreadId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), ThreadId::kInvalid);
}

TEST(TypedId, DistinctTypesDoNotCompare) {
  ThreadId t{7};
  ObjectId o{7};
  EXPECT_TRUE(t.valid());
  EXPECT_TRUE(o.valid());
  // Would not compile: t == o.  The types are unrelated.
  EXPECT_EQ(t.value(), o.value());
}

TEST(TypedId, OrderingAndToString) {
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_EQ(NodeId{3}.to_string(), "node:3");
  EXPECT_EQ(EventId{9}.to_string(), "evt:9");
}

TEST(IdGenerator, MonotoneAndUnique) {
  IdGenerator gen;
  auto a = gen.next<ObjectTag>();
  auto b = gen.next<ObjectTag>();
  EXPECT_TRUE(a.valid());
  EXPECT_NE(a, b);
  EXPECT_LT(a.value(), b.value());
}

TEST(IdGenerator, ThreadIdEncodesRootNode) {
  IdGenerator gen;
  const NodeId root{42};
  const ThreadId tid = gen.next_thread_id(root);
  EXPECT_TRUE(tid.valid());
  EXPECT_EQ(IdGenerator::thread_root_node(tid), root);
}

TEST(IdGenerator, RootNodeRecoverableForManyNodes) {
  IdGenerator gen;
  for (std::uint64_t n = 1; n < 100; ++n) {
    const ThreadId tid = gen.next_thread_id(NodeId{n});
    EXPECT_EQ(IdGenerator::thread_root_node(tid).value(), n);
  }
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s{StatusCode::kDeadTarget, "thr:9"};
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadTarget);
  EXPECT_EQ(s.to_string(), "DEAD_TARGET: thr:9");
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(status_code_name(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r{Status{StatusCode::kTimeout, "t"}};
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Serialize, RoundTripScalars) {
  Writer w;
  w.put(std::uint32_t{0xDEADBEEF});
  w.put(std::int64_t{-12345});
  w.put(3.5);
  w.put(true);
  Reader r(std::move(w).take());
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEF);
  EXPECT_EQ(r.get<std::int64_t>(), -12345);
  EXPECT_EQ(r.get<double>(), 3.5);
  EXPECT_TRUE(r.get_bool());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, RoundTripStringsAndBytes) {
  Writer w;
  w.put(std::string("TERMINATE"));
  w.put(std::vector<std::uint8_t>{1, 2, 3});
  w.put(std::string(""));
  Reader r(std::move(w).take());
  EXPECT_EQ(r.get_string(), "TERMINATE");
  EXPECT_EQ(r.get_bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, RoundTripIds) {
  Writer w;
  w.put(ThreadId{77});
  w.put(ObjectId{88});
  Reader r(std::move(w).take());
  EXPECT_EQ(r.get_id<ThreadTag>(), ThreadId{77});
  EXPECT_EQ(r.get_id<ObjectTag>(), ObjectId{88});
}

TEST(Serialize, RoundTripStringMap) {
  std::map<std::string, std::string> m{{"io", "tty0"}, {"creator", "thr:1"}};
  Writer w;
  w.put(m);
  Reader r(std::move(w).take());
  EXPECT_EQ(r.get_string_map(), m);
}

TEST(Serialize, UnderrunThrows) {
  Writer w;
  w.put(std::uint8_t{1});
  Reader r(std::move(w).take());
  (void)r.get<std::uint8_t>();
  EXPECT_THROW((void)r.get<std::uint64_t>(), DeserializeError);
}

TEST(Serialize, TruncatedStringThrows) {
  Writer w;
  w.put(std::uint32_t{100});  // claims 100 bytes, provides none
  Reader r(std::move(w).take());
  EXPECT_THROW((void)r.get_string(), DeserializeError);
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueue, PushFrontOvertakes) {
  BlockingQueue<int> q;
  q.push(1);
  q.push_front(99);
  EXPECT_EQ(q.pop(), 99);
  EXPECT_EQ(q.pop(), 1);
}

TEST(BlockingQueue, CloseWakesConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  consumer.join();
  EXPECT_FALSE(q.push(5));
}

TEST(BlockingQueue, CloseDrainsRemainingItems) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_EQ(q.pop(), 7);  // closed but not empty: item still delivered
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueue, ConcurrentProducersConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 1000;
  constexpr int kProducers = 4;
  std::atomic<int> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        count++;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<size_t>(p)].join();
  q.close();
  for (int c = 0; c < 2; ++c) threads[static_cast<size_t>(kProducers + c)].join();
  EXPECT_EQ(count.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(), kProducers * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(ThreadPool, ExecutesAllTasks) {
  std::atomic<int> n{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.submit([&] { n++; }));
    }
    pool.shutdown();
  }
  EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPool, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(SimClock, AdvancesManually) {
  SimClock clock;
  EXPECT_EQ(clock.now(), Duration{0});
  clock.advance(std::chrono::microseconds(250));
  EXPECT_EQ(clock.now(), std::chrono::microseconds(250));
}

TEST(SimClock, SleepUntilWakesOnAdvance) {
  SimClock clock;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.sleep_until(std::chrono::microseconds(100));
    woke = true;
  });
  clock.advance(std::chrono::microseconds(99));
  EXPECT_FALSE(woke.load());
  clock.advance(std::chrono::microseconds(1));
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(SimClock, StopReleasesSleepers) {
  SimClock clock;
  std::thread sleeper([&] { clock.sleep_until(std::chrono::hours(1)); });
  clock.stop();
  sleeper.join();
}

TEST(SteadyClock, MonotoneNonDecreasing) {
  SteadyClock clock;
  const auto a = clock.now();
  const auto b = clock.now();
  EXPECT_LE(a, b);
}

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, UniformInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

class RngChanceTest : public ::testing::TestWithParam<double> {};

TEST_P(RngChanceTest, EmpiricalRateWithinTolerance) {
  const double p = GetParam();
  SplitMix64 rng(99);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.chance(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RngChanceTest,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace doct
