// Cross-module integration tests: full-stack scenarios spanning net, rpc,
// dsm, kernel, objects, events, and services — including fault injection
// (latency, partitions) and concurrency stress.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "runtime/runtime.hpp"
#include "services/debugger/debugger.hpp"
#include "services/locks/lock_manager.hpp"
#include "services/monitor/monitor.hpp"
#include "services/termination/termination.hpp"

namespace doct {
namespace {

using namespace std::chrono_literals;
using kernel::Verdict;
using runtime::Cluster;

TEST(Integration, FullStackAppTerminatesCleanly) {
  // Locks + monitoring + termination, one application, three nodes.
  Cluster cluster(3);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  auto& n2 = cluster.node(2);

  services::TerminationService term0(n0.events);
  services::TerminationService term1(n1.events);
  const ObjectId lock_server = n2.objects.add_object(services::LockServer::make());
  const ObjectId monitor_server =
      n0.objects.add_object(services::MonitorServer::make());
  services::LockClient locks(n0.events, n0.objects, lock_server);
  services::MonitorClient monitor(n0.events, n0.objects, monitor_server);

  std::atomic<int> cleanups{0};
  std::atomic<bool> in_service{false};
  auto service = std::make_shared<objects::PassiveObject>("app_service");
  service->define_entry("serve", [&](objects::CallCtx& ctx)
                                     -> Result<objects::Payload> {
    in_service = true;
    while (true) {
      if (!ctx.manager.kernel().sleep_for(1ms).is_ok()) break;
    }
    return objects::Payload{};
  });
  term1.arm_object(*service, [&](ThreadId) { cleanups++; });
  const ObjectId service_id = n1.objects.add_object(service);

  ThreadId root_tid;
  std::atomic<bool> ready{false};
  const ThreadId root = n0.kernel.spawn([&] {
    root_tid = kernel::Kernel::current()->tid();
    ASSERT_TRUE(term0.arm_current_thread().is_ok());
    ASSERT_TRUE(monitor.arm(3ms).is_ok());
    ASSERT_TRUE(locks.acquire("app_state").is_ok());
    const ThreadId worker = n0.kernel.spawn(
        [&] { (void)n0.objects.invoke(service_id, "serve", {}); });
    (void)worker;
    ready = true;
    while (true) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!ready.load() || !in_service.load()) std::this_thread::sleep_for(1ms);
  std::this_thread::sleep_for(15ms);  // let the monitor sample a few times

  ASSERT_TRUE(term0.request_termination(root_tid).is_ok());
  ASSERT_TRUE(n0.kernel.join_thread(root, 15s).is_ok());

  // Lock freed by the TERMINATE chain.
  std::atomic<bool> lock_free{false};
  const ThreadId checker = n0.kernel.spawn([&] {
    for (int i = 0; i < 500; ++i) {
      auto holder = locks.holder("app_state");
      if (holder.is_ok() && !holder.value().valid()) {
        lock_free = true;
        return;
      }
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  ASSERT_TRUE(n0.kernel.join_thread(checker, 15s).is_ok());
  EXPECT_TRUE(lock_free.load());

  // Service cleanup ran; monitor collected samples.
  for (int i = 0; i < 500 && cleanups.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(cleanups.load(), 1);
  auto report = n0.objects.invoke(monitor_server, "report", {});
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(services::MonitorServer::decode_report(report.value()).empty());
}

TEST(Integration, WorksUnderNetworkLatency) {
  runtime::ClusterConfig config;
  config.network.base_latency = 2ms;
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  auto counter = std::make_shared<std::atomic<long>>(0);
  auto obj = std::make_shared<objects::PassiveObject>("slowlink");
  obj->define_entry("bump", [counter](objects::CallCtx&)
                                -> Result<objects::Payload> {
    counter->fetch_add(1);
    return objects::Payload{};
  });
  const ObjectId oid = n1.objects.add_object(obj);

  std::atomic<bool> ok{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ok = n0.objects.invoke(oid, "bump", {}).is_ok();
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 30s).is_ok());
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(counter->load(), 1);
}

TEST(Integration, RaiseAcrossPartitionFailsThenHeals) {
  runtime::ClusterConfig config;
  config.node.kernel.locate_timeout = 200ms;
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  std::atomic<bool> release{false};
  const ThreadId target = n1.kernel.spawn([&] {
    while (!release.load()) {
      if (!n1.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  const EventId ev = cluster.registry().register_event("PARTITIONED");
  // Let the thread register first.
  for (int i = 0; i < 500 && n1.kernel.local_threads().empty(); ++i) {
    std::this_thread::sleep_for(1ms);
  }

  cluster.network().partition(n0.id, n1.id);
  const Status blocked = n0.events.raise(ev, target);
  EXPECT_FALSE(blocked.is_ok());  // locate or deliver must fail

  cluster.network().heal(n0.id, n1.id);
  Status healed;
  for (int i = 0; i < 100; ++i) {
    healed = n0.events.raise(ev, target);
    if (healed.is_ok()) break;
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(healed.is_ok()) << healed.to_string();

  release = true;
  ASSERT_TRUE(n1.kernel.join_thread(target, 10s).is_ok());
}

TEST(Integration, AsyncRaiserGetsTargetDeadEvent) {
  // §7 fault-tolerance: the sender of an asynchronous event is notified when
  // the target has been destroyed.
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ThreadId dead = n0.kernel.spawn([] {});
  ASSERT_TRUE(n0.kernel.join_thread(dead).is_ok());

  std::atomic<bool> notified{false};
  ThreadId reported_dead;
  cluster.procedures().register_procedure(
      "obituary", [&](events::PerThreadCallCtx& ctx) {
        auto r = ctx.block.user_reader();
        reported_dead = r.get_id<ThreadTag>();
        notified = true;
        return Verdict::kResume;
      });
  const EventId ev = cluster.registry().register_event("TO_THE_DEAD");
  const ThreadId raiser = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events
                    .attach_handler(events::sys::kTargetDead, "obituary",
                                    events::OWN_CONTEXT)
                    .is_ok());
    EXPECT_EQ(n0.events.raise(ev, dead).code(), StatusCode::kDeadTarget);
    n0.kernel.poll_events();  // delivery point for the obituary
  });
  ASSERT_TRUE(n0.kernel.join_thread(raiser, 10s).is_ok());
  EXPECT_TRUE(notified.load());
  EXPECT_EQ(reported_dead, dead);
}

TEST(Integration, DebuggerStopsInspectsAndResumes) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);  // debuggee
  auto& n1 = cluster.node(1);  // debugger

  const ObjectId server = n1.objects.add_object(services::DebuggerServer::make());
  services::DebuggerController controller(n1.objects, server);

  std::atomic<bool> resumed{false};
  const ThreadId debuggee = n0.kernel.spawn([&] {
    kernel::Kernel::current()->with_attributes(
        [](kernel::ThreadAttributes& a) { a.io_channel = "pts/7"; });
    ASSERT_TRUE(services::attach_debugger(n0.events, server).is_ok());
    auto verdict = services::breakpoint(n0.events, "checkpoint_alpha");
    resumed = verdict.is_ok() && verdict.value() == Verdict::kResume;
  });

  // Wait for the stop to appear at the debugger.
  std::vector<services::StopInfo> stops;
  for (int i = 0; i < 1000; ++i) {
    auto pending = controller.pending_stops();
    ASSERT_TRUE(pending.is_ok());
    stops = pending.value();
    if (!stops.empty()) break;
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(stops.size(), 1u);
  EXPECT_EQ(stops[0].label, "checkpoint_alpha");
  EXPECT_EQ(stops[0].node, n0.id.value());
  EXPECT_EQ(stops[0].io_channel, "pts/7");
  EXPECT_FALSE(resumed.load());  // still stopped

  ASSERT_TRUE(controller.resolve(stops[0].id, Verdict::kResume).is_ok());
  ASSERT_TRUE(n0.kernel.join_thread(debuggee, 15s).is_ok());
  EXPECT_TRUE(resumed.load());
}

TEST(Integration, DebuggerCanTerminateAtBreakpoint) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId server = n0.objects.add_object(services::DebuggerServer::make());
  services::DebuggerController controller(n0.objects, server);

  std::atomic<bool> past_breakpoint{false};
  const ThreadId debuggee = n0.kernel.spawn([&] {
    services::attach_debugger(n0.events, server);
    auto verdict = services::breakpoint(n0.events, "fatal_point");
    if (verdict.is_ok() && verdict.value() == Verdict::kTerminate) return;
    past_breakpoint = true;
  });
  std::vector<services::StopInfo> stops;
  for (int i = 0; i < 1000; ++i) {
    auto pending = controller.pending_stops();
    ASSERT_TRUE(pending.is_ok());
    stops = pending.value();
    if (!stops.empty()) break;
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(stops.size(), 1u);
  ASSERT_TRUE(controller.resolve(stops[0].id, Verdict::kTerminate).is_ok());
  ASSERT_TRUE(n0.kernel.join_thread(debuggee, 15s).is_ok());
  EXPECT_FALSE(past_breakpoint.load());
}

TEST(Integration, EventFilteringAcrossCallChain) {
  // §4.2: O1 -> O2 -> O3; each attaches its own handler as the thread
  // passes; an event raised in O3's scope propagates outward O3 -> O2 -> O1,
  // i.e. the chain "filters" the event between neighbouring objects.
  Cluster cluster(3);
  std::vector<std::string> order;
  std::mutex order_mu;

  const EventId ev = cluster.registry().register_event("FILTERED");
  for (int i = 1; i <= 3; ++i) {
    cluster.procedures().register_procedure(
        "filter_o" + std::to_string(i), [&, i](events::PerThreadCallCtx&) {
          std::lock_guard<std::mutex> lock(order_mu);
          order.push_back("O" + std::to_string(i));
          // O3 and O2 transform-and-forward; O1 consumes.
          return i == 1 ? Verdict::kResume : Verdict::kPropagate;
        });
  }

  // O3 on node 2: attaches its handler, then raises the event at itself.
  auto& n2 = cluster.node(2);
  auto o3 = std::make_shared<objects::PassiveObject>("O3");
  o3->define_entry("work", [&](objects::CallCtx&) -> Result<objects::Payload> {
    auto& events = n2.events;
    auto attached = events.attach_handler(ev, "filter_o3", events::OWN_CONTEXT);
    if (!attached.is_ok()) return attached.status();
    auto verdict = events.raise_exception(ev, "raised in O3");
    if (!verdict.is_ok()) return verdict.status();
    return objects::Payload{};
  });
  const ObjectId o3_id = n2.objects.add_object(o3);

  // O2 on node 1: attaches its handler, then invokes O3.
  auto& n1 = cluster.node(1);
  auto o2 = std::make_shared<objects::PassiveObject>("O2");
  o2->define_entry("work", [&](objects::CallCtx& ctx) -> Result<objects::Payload> {
    auto attached =
        n1.events.attach_handler(ev, "filter_o2", events::OWN_CONTEXT);
    if (!attached.is_ok()) return attached.status();
    return ctx.manager.invoke(o3_id, "work", {});
  });
  const ObjectId o2_id = n1.objects.add_object(o2);

  // O1 (root) on node 0.
  auto& n0 = cluster.node(0);
  std::atomic<bool> ok{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    auto attached =
        n0.events.attach_handler(ev, "filter_o1", events::OWN_CONTEXT);
    ASSERT_TRUE(attached.is_ok());
    ok = n0.objects.invoke(o2_id, "work", {}).is_ok();
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 30s).is_ok());
  EXPECT_TRUE(ok.load());
  std::lock_guard<std::mutex> lock(order_mu);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "O3");  // innermost (most recently attached) first
  EXPECT_EQ(order[1], "O2");
  EXPECT_EQ(order[2], "O1");
}

TEST(Integration, ConcurrentEventStressNoLostDeliveries) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  constexpr int kTargets = 6;
  constexpr int kEventsPerTarget = 50;

  std::atomic<long> handled{0};
  cluster.procedures().register_procedure(
      "stress", [&](events::PerThreadCallCtx&) {
        handled.fetch_add(1);
        return Verdict::kResume;
      });
  const EventId ev = cluster.registry().register_event("STRESS");

  std::atomic<int> ready{0};
  std::atomic<bool> release{false};
  std::vector<ThreadId> targets;
  for (int i = 0; i < kTargets; ++i) {
    auto& node = i % 2 == 0 ? n0 : n1;
    targets.push_back(node.kernel.spawn([&, idx = i] {
      auto& my_node = idx % 2 == 0 ? n0 : n1;
      ASSERT_TRUE(
          my_node.events.attach_handler(ev, "stress", events::OWN_CONTEXT).is_ok());
      ready++;
      while (!release.load()) {
        if (!my_node.kernel.sleep_for(1ms).is_ok()) return;
      }
    }));
  }
  while (ready.load() < kTargets) std::this_thread::sleep_for(1ms);

  std::vector<std::thread> raisers;
  std::atomic<long> raised{0};
  for (int r = 0; r < 4; ++r) {
    raisers.emplace_back([&, r] {
      SplitMix64 rng(static_cast<std::uint64_t>(r) + 1);
      for (int i = 0; i < kTargets * kEventsPerTarget / 4; ++i) {
        const ThreadId target = targets[rng.below(kTargets)];
        auto& from = rng.chance(0.5) ? n0 : n1;
        if (from.events.raise(ev, target).is_ok()) raised.fetch_add(1);
      }
    });
  }
  for (auto& t : raisers) t.join();

  for (int i = 0; i < 2000 && handled.load() < raised.load(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(handled.load(), raised.load());

  release = true;
  for (int i = 0; i < kTargets; ++i) {
    auto& node = i % 2 == 0 ? n0 : n1;
    ASSERT_TRUE(node.kernel.join_thread(targets[static_cast<size_t>(i)], 15s).is_ok());
  }
}

TEST(Integration, PassiveObjectEventAfterDeactivationFullPath) {
  // Persistence + activation hook + master handler thread, across nodes.
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  auto hits = std::make_shared<std::atomic<int>>(0);
  n1.factory.register_type("persistent_target", [hits] {
    auto obj = std::make_shared<objects::PassiveObject>("persistent_target");
    obj->define_entry(
        "on_commit",
        [hits](objects::CallCtx&) -> Result<objects::Payload> {
          hits->fetch_add(1);
          return objects::Payload{};
        },
        objects::Visibility::kPrivate);
    obj->define_handler("COMMIT2", "on_commit");
    return obj;
  });
  n1.events.set_activation_hook(
      [&n1](ObjectId id) { return n1.store.activate(id); });

  auto made = n1.factory.make("persistent_target");
  ASSERT_TRUE(made.is_ok());
  const ObjectId oid = n1.objects.add_object(made.value());
  ASSERT_TRUE(n1.store.deactivate(oid).is_ok());

  const EventId commit = cluster.registry().register_event("COMMIT2");
  ASSERT_TRUE(n0.events.raise(commit, oid).is_ok());  // remote + passive
  for (int i = 0; i < 1000 && hits->load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(hits->load(), 1);
}

}  // namespace
}  // namespace doct
