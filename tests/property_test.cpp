// Property-based tests (parameterized sweeps over seeds): serialization
// round-trips under fuzzed inputs, LIFO handler-chain invariants under
// random attach/detach interleavings, locator agreement on random trails,
// delivery-order invariants under mixed urgent/ordinary traffic, and
// registry idempotence under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "common/rng.hpp"
#include "runtime/runtime.hpp"

namespace doct {
namespace {

using namespace std::chrono_literals;
using kernel::Verdict;
using runtime::Cluster;

// --- serialization round-trips under fuzz -------------------------------------

std::string random_string(SplitMix64& rng, std::size_t max_len) {
  std::string s;
  const auto len = rng.below(max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.below(256)));
  }
  return s;
}

kernel::ThreadAttributes random_attributes(SplitMix64& rng) {
  kernel::ThreadAttributes attrs;
  attrs.creator = ThreadId{rng.next()};
  attrs.group = GroupId{rng.next()};
  attrs.io_channel = random_string(rng, 32);
  attrs.consistency_label = random_string(rng, 16);
  const auto num_user = rng.below(5);
  for (std::size_t i = 0; i < num_user; ++i) {
    attrs.user[random_string(rng, 8)] = random_string(rng, 24);
  }
  const auto num_handlers = rng.below(6);
  for (std::size_t i = 0; i < num_handlers; ++i) {
    kernel::HandlerRecord record;
    record.id = HandlerId{rng.next()};
    record.event = EventId{rng.next()};
    record.kind = static_cast<kernel::HandlerKind>(rng.below(3));
    record.object = ObjectId{rng.next()};
    record.entry = random_string(rng, 20);
    record.attached_in = ObjectId{rng.next()};
    attrs.handler_chain.push_back(std::move(record));
  }
  const auto num_timers = rng.below(3);
  for (std::size_t i = 0; i < num_timers; ++i) {
    attrs.timers.push_back(
        kernel::TimerRecord{EventId{rng.next()}, rng.next() % 1000000 + 1,
                            rng.chance(0.5)});
  }
  const auto num_frames = rng.below(5);
  for (std::size_t i = 0; i < num_frames; ++i) {
    attrs.call_chain.push_back(
        kernel::InvocationFrame{ObjectId{rng.next()}, NodeId{rng.next()}});
  }
  return attrs;
}

class AttrRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AttrRoundTripTest, SerializeDeserializeIsIdentity) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const kernel::ThreadAttributes attrs = random_attributes(rng);
    Writer w;
    attrs.serialize(w);
    Reader r(std::move(w).take());
    const kernel::ThreadAttributes back =
        kernel::ThreadAttributes::deserialize(r);
    EXPECT_EQ(attrs, back);
    EXPECT_TRUE(r.exhausted());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttrRoundTripTest,
                         ::testing::Values(11, 22, 33, 44, 55));

class NoticeRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NoticeRoundTripTest, SerializeDeserializeIsIdentity) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    kernel::EventNotice notice;
    notice.event = EventId{rng.next()};
    notice.event_name = random_string(rng, 16);
    notice.target_thread = ThreadId{rng.next()};
    notice.target_group = GroupId{rng.next()};
    notice.target_object = ObjectId{rng.next()};
    notice.raiser = ThreadId{rng.next()};
    notice.raiser_node = NodeId{rng.next()};
    notice.synchronous = rng.chance(0.5);
    notice.wait_token = rng.next();
    notice.raised_in = ObjectId{rng.next()};
    notice.system_info = random_string(rng, 64);
    const auto data_len = rng.below(128);
    for (std::size_t i = 0; i < data_len; ++i) {
      notice.user_data.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    Writer w;
    notice.serialize(w);
    Reader r(std::move(w).take());
    EXPECT_EQ(kernel::EventNotice::deserialize(r), notice);
    EXPECT_TRUE(r.exhausted());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoticeRoundTripTest,
                         ::testing::Values(66, 77, 88));

// Truncated payloads must throw, never crash or mis-parse.
class TruncationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TruncationTest, TruncatedNoticeThrows) {
  SplitMix64 rng(GetParam());
  kernel::EventNotice notice;
  notice.event_name = "TRUNCATED";
  notice.system_info = random_string(rng, 40);
  notice.user_data.assign(64, 7);
  Writer w;
  notice.serialize(w);
  auto bytes = std::move(w).take();
  // Chop at a random point strictly inside the payload.
  const auto cut = 1 + rng.below(bytes.size() - 1);
  bytes.resize(cut);
  Reader r(std::move(bytes));
  EXPECT_THROW((void)kernel::EventNotice::deserialize(r), DeserializeError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruncationTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- handler-chain LIFO invariant under random attach/detach -------------------

class ChainInvariantTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainInvariantTest, MatchesReferenceModel) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  cluster.procedures().register_procedure(
      "prop_noop",
      [](events::PerThreadCallCtx&) { return Verdict::kResume; });
  const EventId ev = cluster.registry().register_event("CHAIN_PROP");

  const std::uint64_t seed = GetParam();
  std::atomic<bool> ok{true};
  const ThreadId tid = n0.kernel.spawn([&] {
    SplitMix64 rng(seed);
    std::vector<HandlerId> model;  // reference: ordered list of live handlers
    for (int op = 0; op < 200; ++op) {
      if (model.empty() || rng.chance(0.6)) {
        auto h = n0.events.attach_handler(ev, "prop_noop", events::OWN_CONTEXT);
        if (!h.is_ok()) {
          ok = false;
          return;
        }
        model.push_back(h.value());
      } else {
        const auto victim = rng.below(model.size());
        if (!n0.events.detach_handler(model[victim]).is_ok()) {
          ok = false;
          return;
        }
        model.erase(model.begin() + static_cast<long>(victim));
      }
      // Invariant: the thread's chain (filtered to our event) equals the
      // model, in attachment order.
      const auto chain = kernel::Kernel::current()->with_attributes(
          [&](kernel::ThreadAttributes& a) {
            std::vector<HandlerId> ids;
            for (const auto& record : a.handler_chain) {
              if (record.event == ev) ids.push_back(record.id);
            }
            return ids;
          });
      if (chain != model) {
        ok = false;
        return;
      }
    }
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 30s).is_ok());
  EXPECT_TRUE(ok.load());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainInvariantTest,
                         ::testing::Values(101, 102, 103, 104));

// --- locator agreement on random invocation trails ------------------------------

class LocatorAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocatorAgreementTest, AllThreeStrategiesAgree) {
  constexpr int kNodes = 5;
  Cluster cluster(kNodes);
  SplitMix64 rng(GetParam());

  // Build a random invocation trail: the thread starts at node 0 and hops
  // through a random sequence of distinct nodes, spinning at the last.
  std::vector<int> trail;
  int hops = 1 + static_cast<int>(rng.below(kNodes - 1));
  std::vector<int> candidates{1, 2, 3, 4};
  for (int i = 0; i < hops; ++i) {
    const auto pick = rng.below(candidates.size());
    trail.push_back(candidates[pick]);
    candidates.erase(candidates.begin() + static_cast<long>(pick));
  }

  std::atomic<bool> arrived{false};
  std::atomic<bool> release{false};
  ObjectId next;
  for (int i = static_cast<int>(trail.size()) - 1; i >= 0; --i) {
    auto& node = cluster.node(static_cast<std::size_t>(trail[static_cast<size_t>(i)]));
    auto object = std::make_shared<objects::PassiveObject>(
        "trail_" + std::to_string(i));
    const bool last = i == static_cast<int>(trail.size()) - 1;
    const ObjectId next_copy = next;
    object->define_entry("hop", [&, last, next_copy](objects::CallCtx& ctx)
                                    -> Result<objects::Payload> {
      if (last) {
        arrived = true;
        while (!release.load()) {
          if (!ctx.manager.kernel().sleep_for(1ms).is_ok()) break;
        }
        return objects::Payload{};
      }
      return ctx.manager.invoke(next_copy, "hop", {});
    });
    next = node.objects.add_object(object);
  }

  auto& n0 = cluster.node(0);
  const ThreadId traveller = n0.kernel.spawn([&, first = next] {
    (void)n0.objects.invoke(first, "hop", {});
  });
  while (!arrived.load()) std::this_thread::sleep_for(1ms);

  const NodeId expected =
      cluster.node(static_cast<std::size_t>(trail.back())).id;
  for (auto kind : {kernel::LocatorKind::kBroadcast,
                    kernel::LocatorKind::kPathFollow,
                    kernel::LocatorKind::kMulticast}) {
    // Issue the locate from a random node.
    auto& from = cluster.node(rng.below(kNodes));
    auto located = from.kernel.locate(traveller, kind);
    ASSERT_TRUE(located.is_ok())
        << "locator " << static_cast<int>(kind) << ": "
        << located.status().to_string();
    EXPECT_EQ(located.value(), expected)
        << "locator " << static_cast<int>(kind);
  }

  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(traveller, 30s).is_ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocatorAgreementTest,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

// --- delivery order: FIFO for ordinary, urgent overtakes ------------------------

class DeliveryOrderTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeliveryOrderTest, UrgentFirstThenFifo) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  SplitMix64 rng(GetParam());

  std::vector<std::uint64_t> delivered;
  std::mutex delivered_mu;
  n0.kernel.set_delivery_callback(
      [&](kernel::ThreadContext&, const kernel::EventNotice& notice) {
        std::lock_guard<std::mutex> lock(delivered_mu);
        delivered.push_back(notice.wait_token);  // token reused as marker
        return Verdict::kResume;
      });

  std::atomic<bool> go{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    while (!go.load()) std::this_thread::sleep_for(1ms);
    n0.kernel.poll_events();
  });
  // Queue a random mix while the thread is NOT polling.
  std::vector<std::uint64_t> expected_urgent, expected_ordinary;
  bool enqueued_any = false;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    kernel::EventNotice notice;
    notice.event = EventId{1};
    notice.target_thread = tid;
    notice.wait_token = i;
    const bool urgent = rng.chance(0.3);
    Status s;
    for (int retry = 0; retry < 500; ++retry) {
      s = n0.kernel.deliver_local(notice, urgent);
      if (s.is_ok()) break;
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_TRUE(s.is_ok());
    enqueued_any = true;
    if (urgent) {
      // push_front: urgent notices come out in REVERSE enqueue order, all
      // before any ordinary notice that was queued earlier or later.
      expected_urgent.insert(expected_urgent.begin(), i);
    } else {
      expected_ordinary.push_back(i);
    }
  }
  ASSERT_TRUE(enqueued_any);
  go = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());

  std::vector<std::uint64_t> expected = expected_urgent;
  expected.insert(expected.end(), expected_ordinary.begin(),
                  expected_ordinary.end());
  std::lock_guard<std::mutex> lock(delivered_mu);
  EXPECT_EQ(delivered, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeliveryOrderTest,
                         ::testing::Values(301, 302, 303, 304, 305));

// --- registry idempotence under concurrency -------------------------------------

TEST(RegistryProperty, ConcurrentRegistrationYieldsOneId) {
  events::EventRegistry registry;
  constexpr int kThreads = 8;
  std::vector<EventId> results(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int round = 0; round < 100; ++round) {
        results[static_cast<size_t>(i)] =
            registry.register_event("CONTENDED_NAME");
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)], results[0]);
  }
  // And distinct names get distinct ids.
  EXPECT_NE(registry.register_event("OTHER_NAME"), results[0]);
}

}  // namespace
}  // namespace doct
