// Wire-format round-trip and rejection properties.
//
// The seeded fuzz storm is the load-bearing test: decode(encode(m)) == m for
// messages across every kind range, with and without trace context, payloads
// from 0 bytes to 1 MiB, fed to the incremental FrameDecoder in adversarial
// chunkings.  Truncations and corruptions of valid frames must come back as
// Status — never UB — which the ASan/UBSan and TSan ctest lanes turn into a
// hard check.  Replay a failure with DOCT_WIRE_SEED=<seed>.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/message.hpp"
#include "net/wire.hpp"

using namespace doct;
using namespace doct::net;

namespace {

std::uint64_t fuzz_seed() {
  const char* env = std::getenv("DOCT_WIRE_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return 0xD0C7;
}

Message random_message(SplitMix64& rng, std::size_t max_payload) {
  static constexpr std::uint16_t kKinds[] = {
      kRpcRequest,    kRpcResponse,     kLocateProbe, kLocateBroadcast,
      kThreadMigrate, kGroupCensus,     kEventNotify, kEventAck,
      kDsmPageRequest, kDsmInvalidate,  kHeartbeat,   0x0000,
      0x7FFF,         wire::kCtrlHello, wire::kCtrlGroupJoin,
  };
  Message m;
  m.from = NodeId{1 + rng.below(1000)};
  m.to = NodeId{1 + rng.below(1000)};
  m.kind = kKinds[rng.below(std::size(kKinds))];
  m.call = rng.chance(0.5) ? CallId{rng.next()} : CallId{};
  if (rng.chance(0.5)) {
    m.trace_id = rng.next() | 1;  // non-zero => trace extension on the wire
    m.span_id = rng.next();
  }
  if (rng.chance(0.5)) m.sent_at_us = static_cast<std::int64_t>(rng.below(1u << 30));
  // Payload sizes hammer the boundaries: empty, 1, around the 64 KiB
  // compaction threshold, and up to max_payload.
  std::size_t size = 0;
  switch (rng.below(4)) {
    case 0: size = 0; break;
    case 1: size = 1 + rng.below(16); break;
    case 2: size = (64u << 10) - 8 + rng.below(16); break;
    default: size = rng.below(max_payload + 1); break;
  }
  std::vector<std::uint8_t> payload(size);
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<std::uint8_t>(rng.next());
  }
  m.payload = SharedPayload{std::move(payload)};
  return m;
}

void expect_equal(const Message& a, const Message& b, const std::string& ctx) {
  EXPECT_EQ(a.from, b.from) << ctx;
  EXPECT_EQ(a.to, b.to) << ctx;
  EXPECT_EQ(a.kind, b.kind) << ctx;
  EXPECT_EQ(a.call, b.call) << ctx;
  EXPECT_EQ(a.trace_id, b.trace_id) << ctx;
  EXPECT_EQ(a.span_id, b.span_id) << ctx;
  EXPECT_EQ(a.sent_at_us, b.sent_at_us) << ctx;
  EXPECT_TRUE(a.payload == b.payload) << ctx;
}

TEST(Wire, HeaderLayoutIsStable) {
  // The v1 layout is a public contract; a refactor that moves a field is a
  // protocol break and must bump the version instead.
  Message m;
  m.from = NodeId{0x1122334455667788ULL};
  m.to = NodeId{2};
  m.kind = kEventNotify;
  m.call = CallId{7};
  m.sent_at_us = 9;
  m.payload = SharedPayload{{0xAB, 0xCD}};
  const std::vector<std::uint8_t> frame = wire::encode(m);
  ASSERT_EQ(frame.size(), wire::kHeaderBytes + 2);
  EXPECT_EQ(frame[0], 0xE1);  // magic, little-endian
  EXPECT_EQ(frame[1], 0xA5);
  EXPECT_EQ(frame[2], 0xC7);
  EXPECT_EQ(frame[3], 0xD0);
  EXPECT_EQ(frame[4], wire::kVersion);
  EXPECT_EQ(frame[5], 0);  // no trace => no flag
  EXPECT_EQ(frame[6], 0x00);  // kind 0x0300 LE
  EXPECT_EQ(frame[7], 0x03);
  EXPECT_EQ(frame[8], 0x88);  // from, LE low byte first
  EXPECT_EQ(frame[15], 0x11);
  EXPECT_EQ(frame[40], 2);  // payload_len
  EXPECT_EQ(frame[44], 0xAB);
  EXPECT_EQ(frame[45], 0xCD);
}

TEST(Wire, TraceExtensionOnlyWhenTraced) {
  Message plain;
  plain.from = NodeId{1};
  plain.to = NodeId{2};
  EXPECT_EQ(wire::encode(plain).size(), wire::kHeaderBytes);

  Message traced = plain;
  traced.trace_id = 42;
  traced.span_id = 43;
  const std::vector<std::uint8_t> frame = wire::encode(traced);
  EXPECT_EQ(frame.size(), wire::kHeaderBytes + wire::kTraceExtBytes);
  EXPECT_EQ(frame[5], wire::kFlagTrace);
  auto decoded = wire::decode(frame);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  expect_equal(traced, decoded.value(), "trace ext");
}

TEST(Wire, FuzzRoundTripAllKindsAndChunkings) {
  SplitMix64 rng(fuzz_seed());
  constexpr std::size_t kMaxPayload = 1u << 20;  // 1 MiB
  const std::string seed_note =
      "replay: DOCT_WIRE_SEED=" + std::to_string(fuzz_seed());
  for (int round = 0; round < 200; ++round) {
    const Message m = random_message(rng, kMaxPayload);
    const std::vector<std::uint8_t> frame = wire::encode(m);

    // Whole-frame decode.
    auto decoded = wire::decode(frame);
    ASSERT_TRUE(decoded.is_ok())
        << decoded.status().to_string() << " " << seed_note;
    expect_equal(m, decoded.value(), seed_note);

    // Incremental decode under a random chunking, several messages deep so
    // frame boundaries land mid-chunk.
    wire::FrameDecoder decoder;
    const Message m2 = random_message(rng, 1u << 10);
    std::vector<std::uint8_t> stream = frame;
    const std::vector<std::uint8_t> frame2 = wire::encode(m2);
    stream.insert(stream.end(), frame2.begin(), frame2.end());
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.below(8192), stream.size() - pos);
      ASSERT_TRUE(decoder.feed(stream.data() + pos, chunk).is_ok())
          << seed_note;
      pos += chunk;
    }
    auto first = decoder.next();
    auto second = decoder.next();
    ASSERT_TRUE(first.has_value()) << seed_note;
    ASSERT_TRUE(second.has_value()) << seed_note;
    expect_equal(m, *first, seed_note);
    expect_equal(m2, *second, seed_note);
    EXPECT_FALSE(decoder.next().has_value()) << seed_note;
    EXPECT_EQ(decoder.buffered(), 0u) << seed_note;
  }
}

TEST(Wire, TruncationsNeverDecode) {
  Message m;
  m.from = NodeId{1};
  m.to = NodeId{2};
  m.kind = kRpcRequest;
  m.trace_id = 5;
  m.span_id = 6;
  m.payload = SharedPayload{std::vector<std::uint8_t>(257, 0x5A)};
  const std::vector<std::uint8_t> frame = wire::encode(m);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(frame.begin(),
                                              frame.begin() + cut);
    auto decoded = wire::decode(truncated);
    EXPECT_FALSE(decoded.is_ok()) << "cut=" << cut;
  }
}

TEST(Wire, CorruptedHeadersAreRejectedNotUB) {
  SplitMix64 rng(fuzz_seed() + 1);
  Message m;
  m.from = NodeId{3};
  m.to = NodeId{4};
  m.kind = kEventNotify;
  m.trace_id = 9;
  m.span_id = 10;
  m.payload = SharedPayload{std::vector<std::uint8_t>(64, 0x11)};
  const std::vector<std::uint8_t> frame = wire::encode(m);
  const std::string seed_note =
      "replay: DOCT_WIRE_SEED=" + std::to_string(fuzz_seed());
  for (int round = 0; round < 500; ++round) {
    std::vector<std::uint8_t> corrupt = frame;
    // Flip 1-4 random bytes somewhere in the header region.
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.below(wire::kMaxHeaderBytes);
      corrupt[at] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    // Must not crash; may legitimately still parse if the flips cancel or
    // only touch field bytes (from/to/kind are opaque u64/u16 values).
    auto decoded = wire::decode(corrupt);
    if (decoded.is_ok()) continue;
    EXPECT_FALSE(decoded.status().is_ok()) << seed_note;
  }

  // Targeted corruptions that MUST be rejected.
  {
    std::vector<std::uint8_t> bad_magic = frame;
    bad_magic[0] ^= 0xFF;
    EXPECT_FALSE(wire::decode(bad_magic).is_ok());
  }
  {
    std::vector<std::uint8_t> bad_version = frame;
    bad_version[4] = wire::kVersion + 1;
    EXPECT_FALSE(wire::decode(bad_version).is_ok());
  }
  {
    std::vector<std::uint8_t> reserved_flag = frame;
    reserved_flag[5] |= 0x80;  // reserved bits must be zero in v1
    EXPECT_FALSE(wire::decode(reserved_flag).is_ok());
  }
  {
    std::vector<std::uint8_t> huge_len = frame;
    huge_len[40] = 0xFF;  // payload_len far beyond the cap
    huge_len[41] = 0xFF;
    huge_len[42] = 0xFF;
    huge_len[43] = 0xFF;
    EXPECT_FALSE(wire::decode(huge_len).is_ok());
  }
}

TEST(Wire, PoisonedDecoderStaysPoisoned) {
  wire::FrameDecoder decoder;
  std::vector<std::uint8_t> garbage(wire::kHeaderBytes, 0xEE);
  EXPECT_FALSE(decoder.feed(garbage.data(), garbage.size()).is_ok());
  EXPECT_TRUE(decoder.poisoned());
  // A valid frame after the corruption must NOT resurrect the stream:
  // framing sync is gone for good.
  Message m;
  m.from = NodeId{1};
  m.to = NodeId{2};
  const std::vector<std::uint8_t> frame = wire::encode(m);
  EXPECT_FALSE(decoder.feed(frame.data(), frame.size()).is_ok());
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Wire, DecoderEnforcesPayloadCap) {
  wire::FrameDecoder decoder(/*max_payload=*/128);
  Message small;
  small.from = NodeId{1};
  small.to = NodeId{2};
  small.payload = SharedPayload{std::vector<std::uint8_t>(128, 1)};
  const std::vector<std::uint8_t> ok_frame = wire::encode(small);
  ASSERT_TRUE(decoder.feed(ok_frame.data(), ok_frame.size()).is_ok());
  EXPECT_TRUE(decoder.next().has_value());

  Message big = small;
  big.payload = SharedPayload{std::vector<std::uint8_t>(129, 1)};
  const std::vector<std::uint8_t> big_frame = wire::encode(big);
  EXPECT_FALSE(decoder.feed(big_frame.data(), big_frame.size()).is_ok());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(Wire, TrailingBytesRejectedByWholeFrameDecode) {
  Message m;
  m.from = NodeId{1};
  m.to = NodeId{2};
  std::vector<std::uint8_t> frame = wire::encode(m);
  frame.push_back(0x00);
  EXPECT_FALSE(wire::decode(frame).is_ok());
}

}  // namespace
