// SocketTransport behaviour: loopback delivery, group replication, the
// full Cluster stack over unix/tcp backends in one process, reconnect with
// backoff, and RPC retransmissions surviving a torn connection.  These run
// real syscalls but stay on loopback and finish fast; the cross-OS-process
// variant lives in examples/multiprocess and the CI multiprocess-smoke lane.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "net/socket_transport.hpp"
#include "net/wire.hpp"
#include "runtime/runtime.hpp"
#include "obs_dump.hpp"

using namespace doct;
using namespace doct::net;
using namespace std::chrono_literals;

namespace {

std::string test_unix_addr(int tag) {
  return "unix:/tmp/doct-tt-" + std::to_string(::getpid()) + "-" +
         std::to_string(tag) + ".sock";
}

// Two transports wired into a pair over unix sockets.
struct Pair {
  Pair() {
    SocketTransportConfig c1;
    c1.self = NodeId{1};
    c1.listen = test_unix_addr(1);
    SocketTransportConfig c2;
    c2.self = NodeId{2};
    c2.listen = test_unix_addr(2);
    a = std::make_unique<SocketTransport>(c1);
    b = std::make_unique<SocketTransport>(c2);
    EXPECT_TRUE(a->start().is_ok());
    EXPECT_TRUE(b->start().is_ok());
    a->add_peer(NodeId{2}, b->listen_address());
    b->add_peer(NodeId{1}, a->listen_address());
  }

  std::unique_ptr<SocketTransport> a;
  std::unique_ptr<SocketTransport> b;
};

bool wait_until(const std::function<bool()>& done, Duration timeout = 5s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

TEST(SocketTransport, PointToPointDeliversPayloadIntact) {
  Pair pair;
  std::atomic<int> got{0};
  Message seen;
  std::mutex mu;
  pair.b->register_node(NodeId{2}, [&](const Message& m) {
    std::lock_guard<std::mutex> lock(mu);
    seen = m;
    got.fetch_add(1);
  });

  Message m;
  m.from = NodeId{1};
  m.to = NodeId{2};
  m.kind = kEventNotify;
  m.call = CallId{77};
  m.trace_id = 0xABCD;
  m.span_id = 0x1234;
  m.payload = SharedPayload{{1, 2, 3, 4, 5}};
  ASSERT_TRUE(pair.a->send(m).is_ok());

  ASSERT_TRUE(wait_until([&] { return got.load() == 1; }));
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(seen.from, NodeId{1});
  EXPECT_EQ(seen.kind, kEventNotify);
  EXPECT_EQ(seen.call, CallId{77});
  EXPECT_EQ(seen.trace_id, 0xABCDu);
  EXPECT_TRUE(seen.payload == m.payload);
}

TEST(SocketTransport, SendToUnknownPeerIsNoSuchNode) {
  Pair pair;
  Message m;
  m.from = NodeId{1};
  m.to = NodeId{99};
  EXPECT_EQ(pair.a->send(m).code(), StatusCode::kNoSuchNode);
}

TEST(SocketTransport, SelfSendLoopsBack) {
  Pair pair;
  std::atomic<int> got{0};
  pair.a->register_node(NodeId{1},
                        [&](const Message&) { got.fetch_add(1); });
  Message m;
  m.from = NodeId{1};
  m.to = NodeId{1};
  ASSERT_TRUE(pair.a->send(m).is_ok());
  EXPECT_TRUE(wait_until([&] { return got.load() == 1; }));
}

TEST(SocketTransport, GroupJoinReplicatesToPeerAndMulticastLands) {
  Pair pair;
  std::atomic<int> got{0};
  pair.b->register_node(NodeId{2}, [&](const Message&) { got.fetch_add(1); });

  const GroupId group{0x600D};
  ASSERT_TRUE(pair.b->create_multicast_group(group).is_ok());
  ASSERT_TRUE(pair.b->join(group, NodeId{2}).is_ok());

  // The join announcement must replicate into a's sender-side map before a
  // multicast from node 1 can fan out to node 2.  The announcement may have
  // auto-created the group on a already, so kAlreadyExists is fine.
  ASSERT_TRUE(pair.a->wait_for_peers(1, 5s));
  const Status created = pair.a->create_multicast_group(group);
  ASSERT_TRUE(created.is_ok() || created.code() == StatusCode::kAlreadyExists);
  ASSERT_TRUE(wait_until([&] {
    Message probe;
    probe.from = NodeId{1};
    probe.kind = kEventNotify;
    return pair.a->multicast(group, probe).is_ok() && got.load() > 0;
  }));

  // leave() replication: traffic stops reaching node 2.
  ASSERT_TRUE(pair.b->leave(group, NodeId{2}).is_ok());
  ASSERT_TRUE(pair.b->flush(5s));
  std::this_thread::sleep_for(50ms);
  const int before = got.load();
  Message after_leave;
  after_leave.from = NodeId{1};
  after_leave.kind = kEventNotify;
  ASSERT_TRUE(pair.a->multicast(group, after_leave).is_ok());
  ASSERT_TRUE(pair.a->flush(5s));
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(got.load(), before);
}

TEST(SocketTransport, NodesReportsConfiguredMesh) {
  Pair pair;
  const std::vector<NodeId> expected{NodeId{1}, NodeId{2}};
  EXPECT_EQ(pair.a->nodes(), expected);
  EXPECT_EQ(pair.b->nodes(), expected);
}

TEST(SocketTransport, RegisterRejectsForeignNode) {
  Pair pair;
  EXPECT_EQ(pair.a->register_node(NodeId{2}, [](const Message&) {}).code(),
            StatusCode::kInvalidArgument);
}

TEST(SocketTransport, ReconnectsAfterPeerRestart) {
  SocketTransportConfig c1;
  c1.self = NodeId{1};
  c1.listen = test_unix_addr(11);
  c1.reconnect_backoff_initial = 5ms;
  c1.reconnect_backoff_max = 50ms;
  SocketTransport a(c1);
  ASSERT_TRUE(a.start().is_ok());

  const std::string b_addr = test_unix_addr(12);
  std::atomic<int> got{0};
  auto make_b = [&] {
    SocketTransportConfig c2;
    c2.self = NodeId{2};
    c2.listen = b_addr;
    auto b = std::make_unique<SocketTransport>(c2);
    // Handler before start(): no window where a data frame arrives with no
    // local node registered.
    b->register_node(NodeId{2}, [&](const Message&) { got.fetch_add(1); });
    EXPECT_TRUE(b->start().is_ok());
    return b;
  };

  auto b = make_b();
  a.add_peer(NodeId{2}, b_addr);
  ASSERT_TRUE(a.wait_for_peers(1, 5s));
  Message m;
  m.from = NodeId{1};
  m.to = NodeId{2};
  ASSERT_TRUE(a.send(m).is_ok());
  ASSERT_TRUE(wait_until([&] { return got.load() == 1; }));

  // Kill the receiver entirely.  Disconnection is detected lazily: the
  // writer hits the dead socket on its next write, requeues the unsent
  // frame, and redials with backoff until a new transport binds the same
  // address — at which point the requeued frame is the first data out.
  b.reset();
  Message again;
  again.from = NodeId{1};
  again.to = NodeId{2};
  ASSERT_TRUE(a.send(again).is_ok());
  std::this_thread::sleep_for(100ms);  // let the writer discover the loss
  b = make_b();
  ASSERT_TRUE(wait_until([&] { return got.load() >= 2; }, 10s));
  EXPECT_GE(a.stats().reconnects, 1u);
}

// The full node stack over each socket backend, single process: spawn a
// thread on node 0, raise at it from node 1 across a real socket, and do a
// synchronous raise_and_wait round trip.
class ClusterOverSockets : public ::testing::TestWithParam<TransportKind> {};

TEST_P(ClusterOverSockets, RemoteRaiseAndSyncRoundTrip) {
  runtime::ClusterConfig config;
  config.network.transport = GetParam();
  runtime::Cluster cluster(2, config);
  ASSERT_NE(cluster.socket_transport(0), nullptr);

  const EventId ev = cluster.registry().register_event("tt.ping");
  std::atomic<int> handled{0};
  cluster.procedures().register_procedure(
      "tt.count", [&](events::PerThreadCallCtx&) {
        handled.fetch_add(1);
        return kernel::Verdict::kResume;
      });

  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  std::atomic<bool> ready{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    n0.events.attach_handler(ev, "tt.count", events::OWN_CONTEXT);
    ready.store(true);
    while (n0.kernel.sleep_for(1ms).is_ok()) {
    }
  });
  ASSERT_TRUE(wait_until([&] { return ready.load(); }));

  ASSERT_TRUE(n1.events.raise(ev, tid).is_ok());
  ASSERT_TRUE(wait_until([&] { return handled.load() >= 1; }, 10s));

  auto verdict = n1.events.raise_and_wait(ev, tid);
  ASSERT_TRUE(verdict.is_ok()) << verdict.status().to_string();
  EXPECT_EQ(verdict.value(), kernel::Verdict::kResume);
  EXPECT_GE(handled.load(), 2);

  n1.events.raise(events::sys::kTerminate, tid);
  EXPECT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
}

INSTANTIATE_TEST_SUITE_P(Backends, ClusterOverSockets,
                         ::testing::Values(TransportKind::kUnixSocket,
                                           TransportKind::kTcp),
                         [](const auto& info) {
                           return info.param == TransportKind::kUnixSocket
                                      ? "unix"
                                      : "tcp";
                         });

// RPC retransmission across a reconnect: tear node 1's listener down
// mid-conversation and verify a retried call still lands exactly once
// (CallId dedup makes the retry idempotent).
TEST(SocketTransport, RpcRetrySurvivesReconnectedStream) {
  runtime::ClusterConfig config;
  config.network.transport = TransportKind::kUnixSocket;
  config.node.rpc.max_retries = 5;
  config.node.rpc.retry_base_delay = 20ms;
  runtime::Cluster cluster(2, config);

  std::atomic<int> executions{0};
  cluster.node(1).rpc.register_method(
      "tt.echo", [&](NodeId, Reader& r) -> Result<rpc::Payload> {
        executions.fetch_add(1);
        Writer w;
        w.put(r.get<std::uint64_t>());
        return std::move(w).take();
      });

  // Baseline call proves the path.
  {
    Writer w;
    w.put(std::uint64_t{41});
    auto reply = cluster.node(0).rpc.call(NodeId{2}, "tt.echo",
                                          std::move(w).take(), 5s);
    ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  }

  // Tear down every connection into node 1 (the callee).  Node 0's next
  // request write hits a dead socket: either the transport requeues the
  // unsent frame across the redial, or a frame already buffered into the
  // torn socket is lost and rpc's retry resends it — both must be invisible
  // to the caller, and CallId dedup keeps each call's execution count at 1.
  cluster.socket_transport(1)->drop_connections();
  const int before = executions.load();
  std::vector<std::thread> callers;
  std::atomic<int> ok{0};
  for (int i = 0; i < 8; ++i) {
    callers.emplace_back([&, i] {
      Writer w;
      w.put(static_cast<std::uint64_t>(i));
      auto reply = cluster.node(0).rpc.call(NodeId{2}, "tt.echo",
                                            std::move(w).take(), 10s);
      if (reply.is_ok()) ok.fetch_add(1);
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(ok.load(), 8);
  EXPECT_EQ(executions.load(), before + 8);
}

}  // namespace
