// Hot-path spine suite: the sharded network core, the zero-copy payload
// fan-out, batched queue drains, and the kernel's thread-location cache.
//
// These tests pin the semantic edges of the perf work:
//   * zero-latency traffic must bypass the wire thread entirely
//     (wire_queued stays 0) yet still respect partitions and fault plans;
//   * broadcast legs and injected duplicates must carry the SAME payload
//     buffer, not copies;
//   * a stale location hint must cost one failed delivery, never a wrong
//     answer or a hang — migration re-locates transparently, a crashed
//     hinted host degrades to the configured locator within RPC timeouts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/queue.hpp"
#include "kernel/location_cache.hpp"
#include "net/network.hpp"
#include "runtime/runtime.hpp"

namespace doct {
namespace {

using namespace std::chrono_literals;
using net::Message;
using net::Network;
using net::NetworkConfig;
using runtime::Cluster;
using runtime::ClusterConfig;

// --- BlockingQueue::pop_all ----------------------------------------------------

TEST(SpineQueue, PopAllDrainsEverythingInOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  const auto batch = q.pop_all();
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(batch[static_cast<size_t>(i)], i);
}

TEST(SpineQueue, PopAllReturnsResidueThenEmptyAfterClose) {
  BlockingQueue<int> q;
  ASSERT_TRUE(q.push(7));
  ASSERT_TRUE(q.push(8));
  q.close();
  const auto residue = q.pop_all();
  ASSERT_EQ(residue.size(), 2u);
  EXPECT_EQ(residue.front(), 7);
  // Closed and drained: the empty batch is the shutdown signal.
  EXPECT_TRUE(q.pop_all().empty());
}

TEST(SpineQueue, PopAllWakesOnPush) {
  BlockingQueue<int> q;
  std::atomic<int> got{0};
  std::thread consumer([&] {
    const auto batch = q.pop_all();
    got = static_cast<int>(batch.size());
  });
  std::this_thread::sleep_for(10ms);
  ASSERT_TRUE(q.push(1));
  consumer.join();
  EXPECT_GE(got.load(), 1);
  q.close();
}

// --- zero-latency direct push --------------------------------------------------

TEST(SpineNetwork, ZeroLatencyTrafficNeverTouchesWireQueue) {
  Network net;  // default config: base_latency == 0
  std::atomic<int> received{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(
      net.register_node(NodeId{2}, [&](const Message&) { received++; })
          .is_ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(net.send(Message{.from = NodeId{1},
                                 .to = NodeId{2},
                                 .kind = 0x1,
                                 .call = CallId{},
                                 .payload = {1, 2, 3}})
                    .is_ok());
  }
  net.quiesce();
  EXPECT_EQ(received.load(), 50);
  const auto stats = net.stats();
  EXPECT_EQ(stats.delivered, 50u);
  EXPECT_EQ(stats.wire_queued, 0u);
}

TEST(SpineNetwork, LatentTrafficGoesThroughWireQueue) {
  NetworkConfig config;
  config.base_latency = 1ms;
  Network net(config);
  std::atomic<int> received{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(
      net.register_node(NodeId{2}, [&](const Message&) { received++; })
          .is_ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(net.send(Message{.from = NodeId{1},
                                 .to = NodeId{2},
                                 .kind = 0x1,
                                 .call = CallId{},
                                 .payload = {}})
                    .is_ok());
  }
  net.quiesce();
  EXPECT_EQ(received.load(), 5);
  EXPECT_EQ(net.stats().wire_queued, 5u);
}

TEST(SpineNetwork, DirectPushStillRespectsPartitions) {
  Network net;  // zero latency: sends take the direct-push path
  std::atomic<int> received{0};
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(
      net.register_node(NodeId{2}, [&](const Message&) { received++; })
          .is_ok());
  net.partition(NodeId{1}, NodeId{2});
  ASSERT_TRUE(net.send(Message{.from = NodeId{1},
                               .to = NodeId{2},
                               .kind = 0x1,
                               .call = CallId{},
                               .payload = {}})
                  .is_ok());
  net.quiesce();
  EXPECT_EQ(received.load(), 0);
  EXPECT_EQ(net.stats().dropped_by_partition, 1u);
  EXPECT_EQ(net.stats().wire_queued, 0u);
}

// --- zero-copy payload fan-out -------------------------------------------------

TEST(SpineNetwork, BroadcastLegsShareOnePayloadBuffer) {
  Network net;
  std::mutex mu;
  std::vector<const std::uint8_t*> seen;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(net.register_node(NodeId{i},
                                  [&](const Message& m) {
                                    std::lock_guard<std::mutex> lock(mu);
                                    seen.push_back(m.payload.data());
                                  })
                    .is_ok());
  }
  net::SharedPayload body(std::vector<std::uint8_t>(1024, 0xCD));
  const std::uint8_t* source = body.data();
  ASSERT_TRUE(net.broadcast(Message{.from = NodeId{1},
                                    .to = NodeId{},
                                    .kind = 0x2,
                                    .call = CallId{},
                                    .payload = body})
                  .is_ok());
  net.quiesce();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(seen.size(), 3u);  // every node but the sender
  for (const std::uint8_t* p : seen) EXPECT_EQ(p, source);
}

TEST(SpineNetwork, InjectedDuplicateSharesThePayloadBuffer) {
  Network net;
  net::FaultPlan plan;
  plan.seed = 11;
  plan.link_defaults.duplicate_probability = 1.0;
  net.load_fault_plan(plan);
  std::mutex mu;
  std::vector<const std::uint8_t*> seen;
  ASSERT_TRUE(net.register_node(NodeId{1}, [](const Message&) {}).is_ok());
  ASSERT_TRUE(net.register_node(NodeId{2},
                                [&](const Message& m) {
                                  std::lock_guard<std::mutex> lock(mu);
                                  seen.push_back(m.payload.data());
                                })
                  .is_ok());
  ASSERT_TRUE(net.send(Message{.from = NodeId{1},
                               .to = NodeId{2},
                               .kind = 0x3,
                               .call = CallId{},
                               .payload = std::vector<std::uint8_t>(64, 0xEE)})
                  .is_ok());
  net.quiesce();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(seen.size(), 2u);  // original + duplicate
  EXPECT_EQ(seen[0], seen[1]);
}

// --- LocationCache unit behaviour ----------------------------------------------

TEST(SpineLocationCache, MissThenNoteThenHit) {
  kernel::LocationCache cache;
  EXPECT_FALSE(cache.lookup(ThreadId{42}).has_value());
  cache.note(ThreadId{42}, NodeId{3});
  auto hit = cache.lookup(ThreadId{42});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, NodeId{3});
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST(SpineLocationCache, NoteStaleDropsAndCounts) {
  kernel::LocationCache cache;
  cache.note(ThreadId{1}, NodeId{2});
  cache.note_stale(ThreadId{1});
  EXPECT_FALSE(cache.lookup(ThreadId{1}).has_value());
  EXPECT_EQ(cache.stats().stale, 1u);
  // note_stale on an absent entry is a no-op, not a count.
  cache.note_stale(ThreadId{1});
  EXPECT_EQ(cache.stats().stale, 1u);
}

TEST(SpineLocationCache, InvalidateNodeDropsEveryHintAtThatNode) {
  kernel::LocationCache cache;
  for (std::uint64_t t = 1; t <= 20; ++t) {
    cache.note(ThreadId{t}, NodeId{1 + (t % 2)});
  }
  cache.invalidate_node(NodeId{2});
  for (std::uint64_t t = 1; t <= 20; ++t) {
    const auto hit = cache.lookup(ThreadId{t});
    if (t % 2 == 1) {
      // Odd tids pointed at NodeId{2}: gone.
      EXPECT_FALSE(hit.has_value()) << t;
    } else {
      ASSERT_TRUE(hit.has_value()) << t;
      EXPECT_EQ(*hit, NodeId{1});
    }
  }
  EXPECT_EQ(cache.stats().invalidations, 10u);
}

TEST(SpineLocationCache, CapacityEvictsInsteadOfGrowing) {
  kernel::LocationCache cache(
      kernel::LocationCacheConfig{.enabled = true, .capacity = 16});
  for (std::uint64_t t = 1; t <= 200; ++t) {
    cache.note(ThreadId{t}, NodeId{1});
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.inserts, 200u);
  EXPECT_GE(stats.evictions, 200u - 16u);
}

TEST(SpineLocationCache, DisabledCacheIsInert) {
  kernel::LocationCache cache(
      kernel::LocationCacheConfig{.enabled = false, .capacity = 16});
  cache.note(ThreadId{1}, NodeId{2});
  EXPECT_FALSE(cache.lookup(ThreadId{1}).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0u);
}

// --- kernel integration: hints, staleness, migration, crashes -------------------

TEST(SpineKernel, CachedDeliverySkipsTheLocate) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  std::atomic<bool> release{false};
  const ThreadId parked = n1.kernel.spawn([&] {
    while (!release.load()) {
      if (!n1.kernel.sleep_for(1ms).is_ok()) return;
    }
  });

  // Populate n0's cache with an authoritative locate...
  ASSERT_EQ(n0.kernel.locate(parked).value(), n1.id);
  ASSERT_GE(n0.kernel.location_cache().stats().inserts, 1u);

  // ...then the raise rides the hint: no locate, one delivery RPC.
  ASSERT_TRUE(n0.events.raise(events::sys::kTerminate, parked).is_ok());
  EXPECT_EQ(n0.kernel.stats().cached_deliveries, 1u);
  EXPECT_GE(n0.kernel.location_cache().stats().hits, 1u);

  ASSERT_TRUE(n1.kernel.join_thread(parked, 15s).is_ok());
}

TEST(SpineKernel, StaleHintAfterMigrationRelocatesTransparently) {
  Cluster cluster(3);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  auto& n2 = cluster.node(2);

  std::atomic<bool> parked_remote{false};
  std::atomic<bool> release_remote{false};
  std::atomic<bool> home_again{false};
  std::atomic<bool> release_home{false};

  // An object on n1 whose entry parks the visiting thread there.
  auto station = std::make_shared<objects::PassiveObject>("station");
  station->define_entry(
      "park", [&](objects::CallCtx& ctx) -> Result<objects::Payload> {
        parked_remote = true;
        while (!release_remote.load()) {
          if (!ctx.manager.kernel().sleep_for(1ms).is_ok()) break;
        }
        return objects::Payload{};
      });
  const ObjectId station_id = n1.objects.add_object(station);

  const ThreadId traveller = n0.kernel.spawn([&] {
    (void)n0.objects.invoke(station_id, "park", {});
    home_again = true;
    while (!release_home.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!parked_remote.load()) std::this_thread::sleep_for(1ms);

  // n2 learns (correctly, for now) that the traveller is at n1.
  ASSERT_EQ(n2.kernel.locate(traveller).value(), n1.id);

  // The traveller goes home; n2's hint is now stale.
  release_remote = true;
  while (!home_again.load()) std::this_thread::sleep_for(1ms);

  // The raise from n2 must succeed anyway: the hinted delivery fails with
  // kNoSuchThread, the hint is dropped, and the fresh locate finds n0.
  release_home = true;  // raise is async; let the thread also exit naturally
  ASSERT_TRUE(n2.events.raise(events::sys::kTerminate, traveller).is_ok());
  EXPECT_GE(n2.kernel.location_cache().stats().stale, 1u);

  ASSERT_TRUE(n0.kernel.join_thread(traveller, 15s).is_ok());
  cluster.network().quiesce();
}

TEST(SpineKernel, CrashedHintedHostDegradesToBoundedFailure) {
  ClusterConfig config;
  config.node.rpc.default_timeout = 500ms;
  config.node.kernel.locate_timeout = 300ms;
  Cluster cluster(3, config);
  auto& n0 = cluster.node(0);
  auto& n2 = cluster.node(2);

  std::atomic<bool> release{false};
  const ThreadId stranded = n2.kernel.spawn([&] {
    while (!release.load()) {
      if (!n2.kernel.sleep_for(1ms).is_ok()) return;
    }
  });

  ASSERT_EQ(n0.kernel.locate(stranded).value(), n2.id);

  // The failure-detector hook clears every hint pointing at the dead peer.
  n0.kernel.note_peer_down(n2.id);
  EXPECT_GE(n0.kernel.location_cache().stats().invalidations, 1u);

  // Re-learn the hint, then crash the hinted host for real.
  ASSERT_EQ(n0.kernel.locate(stranded).value(), n2.id);
  ASSERT_TRUE(cluster.network().crash_node(n2.id).is_ok());

  // A cached entry for a crashed node must not wedge delivery: the hinted
  // RPC times out, the hint is dropped, the fallback locate fails — all
  // within the configured timeouts.
  const auto start = std::chrono::steady_clock::now();
  const Status failed = n0.events.raise(events::sys::kTerminate, stranded);
  EXPECT_FALSE(failed.is_ok());
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);

  // After restart the thread (which never stopped running on its kernel) is
  // reachable again through a fresh locate.
  ASSERT_TRUE(cluster.network().restart_node(n2.id).is_ok());
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  Status status = Status::ok();
  do {
    status = n0.events.raise(events::sys::kTerminate, stranded);
    if (status.is_ok()) break;
    std::this_thread::sleep_for(10ms);
  } while (std::chrono::steady_clock::now() < deadline);
  EXPECT_TRUE(status.is_ok()) << status.to_string();

  ASSERT_TRUE(n2.kernel.join_thread(stranded, 15s).is_ok());
  cluster.network().quiesce();
  EXPECT_EQ(cluster.network().in_flight(), 0);
}

TEST(SpineKernel, CacheAblationViaConfig) {
  ClusterConfig config;
  config.node.kernel.location_cache.enabled = false;
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  std::atomic<bool> release{false};
  const ThreadId parked = n1.kernel.spawn([&] {
    while (!release.load()) {
      if (!n1.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  ASSERT_EQ(n0.kernel.locate(parked).value(), n1.id);
  ASSERT_TRUE(n0.events.raise(events::sys::kTerminate, parked).is_ok());
  // With the cache off nothing is counted and nothing rides hints.
  const auto stats = n0.kernel.location_cache().stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0u);
  EXPECT_EQ(n0.kernel.stats().cached_deliveries, 0u);
  ASSERT_TRUE(n1.kernel.join_thread(parked, 15s).is_ok());
}

}  // namespace
}  // namespace doct
