// Deterministic concurrency stress suite.
//
// Each scenario deliberately provokes the interleavings the DO/CT runtime is
// most likely to get wrong: raise/raise_and_wait storms converging on one
// target, handler registration racing with delivery, node shutdown racing
// with in-flight messages, TERMINATE-chain teardown under load, and pager
// faults from many threads at once.  Workloads are driven by seeded
// SplitMix64 streams (one per storm thread) so a failing interleaving can be
// replayed.  The suite is the workload for the DOCT_SANITIZE=thread and
// DOCT_SANITIZE=address;undefined CI legs.
//
// Every scenario ends with quiesce_and_check(): Network::quiesce() must
// return (no lost in-flight token can hang it) and Network::in_flight() must
// then read exactly 0 — shutdown races that leak or double-release tokens
// regress loudly here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "events/event_system.hpp"
#include "net/network.hpp"
#include "obs_dump.hpp"
#include "runtime/runtime.hpp"
#include "services/pager/pager.hpp"
#include "services/termination/termination.hpp"

namespace doct {
namespace {

using namespace std::chrono_literals;
using events::OWN_CONTEXT;
using kernel::Verdict;
using runtime::Cluster;
using runtime::ClusterConfig;

constexpr std::uint64_t kSuiteSeed = 0xD0C7'57E5'5EEDULL;

// Sanitizer instrumentation serializes aggressively; keep iteration counts
// interleaving-dense but wall-clock modest.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr int kStormThreads = 4;
constexpr int kStormIters = 40;
#else
constexpr int kStormThreads = 6;
constexpr int kStormIters = 120;
#endif

void quiesce_and_check(net::Network& network) {
  network.quiesce();
  EXPECT_EQ(network.in_flight(), 0)
      << "in-flight accounting leaked a token: quiesce() returned while "
         "messages were still outstanding";
}

ClusterConfig stress_config() {
  ClusterConfig config;
  // Short sync timeout: a storm thread that loses a rendezvous race must not
  // stall the whole scenario for the default 10s.
  config.node.events.sync_timeout = 3s;
  return config;
}

// --- 1. raise / raise_and_wait storm on a single thread target --------------

TEST(Stress, ThreadTargetRaiseStorm) {
  Cluster cluster(2, stress_config());
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  const EventId ev = cluster.registry().register_event("STORM_POKE");

  std::atomic<int> handled{0};
  cluster.procedures().register_procedure("storm_count",
                                          [&](events::PerThreadCallCtx&) {
                                            handled++;
                                            return Verdict::kResume;
                                          });

  std::atomic<bool> armed{false};
  std::atomic<bool> stop{false};
  const ThreadId victim = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events.attach_handler(ev, "storm_count", OWN_CONTEXT).is_ok());
    armed = true;
    // Tight delivery-point loop: every sleep slice is a chance to interleave
    // with an incoming storm raise.
    while (!stop.load(std::memory_order_acquire)) {
      if (!n0.kernel.sleep_for(100us).is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);

  std::atomic<int> sync_ok{0};
  std::vector<std::thread> raisers;
  for (int t = 0; t < kStormThreads; ++t) {
    raisers.emplace_back([&, t] {
      SplitMix64 rng(kSuiteSeed + static_cast<std::uint64_t>(t));
      // Half the threads raise from node 0 (local), half from node 1
      // (remote: locate + kernel.deliver RPC under storm).
      auto& node = (t % 2 == 0) ? n0 : n1;
      for (int i = 0; i < kStormIters; ++i) {
        if (rng.chance(0.25)) {
          auto verdict = node.events.raise_and_wait(ev, victim);
          if (verdict.is_ok()) sync_ok++;
        } else {
          node.events.raise(ev, victim);
        }
      }
    });
  }
  for (auto& t : raisers) t.join();

  // Let the victim drain its queue before stopping it.
  for (int i = 0; i < 2000 && cluster.network().in_flight() > 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  stop = true;
  ASSERT_TRUE(n0.kernel.join_thread(victim, 30s).is_ok());

  EXPECT_GT(handled.load(), 0);
  EXPECT_GT(sync_ok.load(), 0);
  quiesce_and_check(cluster.network());
}

// --- 2. group storm with mixed sync/async and TERMINATE mid-flight ----------

TEST(Stress, GroupTargetStormThenTerminate) {
  ClusterConfig config = stress_config();
  // Most sync raises here land after the group is TERMINATEd and nobody will
  // ever resume them; a short timeout keeps those losses cheap.
  config.node.events.sync_timeout = 100ms;
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  const EventId ev = cluster.registry().register_event("GROUP_STORM");

  std::atomic<int> handled{0};
  cluster.procedures().register_procedure("group_count",
                                          [&](events::PerThreadCallCtx&) {
                                            handled++;
                                            return Verdict::kResume;
                                          });

  const GroupId group = n0.kernel.create_group();
  std::atomic<int> armed{0};
  std::vector<ThreadId> members;
  // Members spread across both nodes; each runs until TERMINATEd.
  for (int i = 0; i < 4; ++i) {
    auto& node = (i % 2 == 0) ? n0 : n1;
    members.push_back(node.kernel.spawn(
        [&, i] {
          auto& self = (i % 2 == 0) ? n0 : n1;
          ASSERT_TRUE(
              self.events.attach_handler(ev, "group_count", OWN_CONTEXT).is_ok());
          armed++;
          while (self.kernel.sleep_for(100us).is_ok()) {
          }
        },
        {.group = group}));
  }
  while (armed.load() < 4) std::this_thread::sleep_for(1ms);

  std::vector<std::thread> raisers;
  for (int t = 0; t < kStormThreads; ++t) {
    raisers.emplace_back([&, t] {
      SplitMix64 rng(kSuiteSeed ^ (0x1000u + static_cast<std::uint64_t>(t)));
      auto& node = (t % 2 == 0) ? n1 : n0;
      for (int i = 0; i < kStormIters; ++i) {
        if (rng.chance(0.2)) {
          (void)node.events.raise_and_wait(ev, group);
        } else {
          node.events.raise(ev, group);
        }
      }
    });
  }
  // Let at least one storm raise land before the TERMINATE joins the race:
  // on a loaded single-core runner the TERMINATE can otherwise win outright
  // and the handled>0 assertion below has nothing to observe.
  for (int i = 0; i < 10000 && handled.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  // TERMINATE the whole group while the storm is still raising at it: late
  // notices must hit tombstones / dead targets without leaking tokens.
  n0.events.raise(events::sys::kTerminate, group);
  for (auto& t : raisers) t.join();

  for (std::size_t i = 0; i < members.size(); ++i) {
    auto& node = (i % 2 == 0) ? n0 : n1;
    ASSERT_TRUE(node.kernel.join_thread(members[i], 30s).is_ok());
  }
  EXPECT_GT(handled.load(), 0);
  quiesce_and_check(cluster.network());

  auto census = n0.kernel.group_census(group);
  ASSERT_TRUE(census.is_ok());
  EXPECT_TRUE(census.value().empty());
}

// --- 3. object-target storm, both dispatch modes -----------------------------

void object_storm(events::ObjectDispatchMode mode) {
  ClusterConfig config = stress_config();
  config.node.events.dispatch_mode = mode;
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  const EventId ev = cluster.registry().register_event("OBJ_STORM");

  std::atomic<int> handled{0};
  auto target = std::make_shared<objects::PassiveObject>("storm_target");
  target->define_entry(
      "on_storm",
      [&](objects::CallCtx&) -> Result<objects::Payload> {
        handled++;
        return objects::Payload{static_cast<std::uint8_t>(Verdict::kResume)};
      },
      objects::Visibility::kPrivate);
  target->define_handler("OBJ_STORM", "on_storm");
  // Object lives on node 1; node-0 raisers exercise the remote
  // events.object_notify path, node-1 raisers the local dispatch path.
  const ObjectId obj = n1.objects.add_object(target);

  std::atomic<int> sync_ok{0};
  std::vector<std::thread> raisers;
  for (int t = 0; t < kStormThreads; ++t) {
    raisers.emplace_back([&, t] {
      SplitMix64 rng(kSuiteSeed ^ (0x2000u + static_cast<std::uint64_t>(t)));
      auto& node = (t % 2 == 0) ? n0 : n1;
      for (int i = 0; i < kStormIters; ++i) {
        if (rng.chance(0.3)) {
          auto verdict = node.events.raise_and_wait(ev, obj);
          if (verdict.is_ok()) sync_ok++;
        } else {
          ASSERT_TRUE(node.events.raise(ev, obj).is_ok());
        }
      }
    });
  }
  for (auto& t : raisers) t.join();
  quiesce_and_check(cluster.network());
  EXPECT_GT(handled.load(), 0);
  EXPECT_GT(sync_ok.load(), 0);
}

TEST(Stress, ObjectTargetStormMasterThread) {
  object_storm(events::ObjectDispatchMode::kMasterThread);
}

TEST(Stress, ObjectTargetStormThreadPerEvent) {
  object_storm(events::ObjectDispatchMode::kThreadPerEvent);
}

// --- 4. handler attach/detach racing with delivery ---------------------------

TEST(Stress, AttachDetachRacesDelivery) {
  Cluster cluster(1, stress_config());
  auto& n0 = cluster.node(0);
  const EventId ev = cluster.registry().register_event("FLICKER");

  std::atomic<int> handled{0};
  cluster.procedures().register_procedure("flicker_count",
                                          [&](events::PerThreadCallCtx&) {
                                            handled++;
                                            return Verdict::kResume;
                                          });

  std::atomic<bool> started{false};
  std::atomic<bool> stop{false};
  const ThreadId victim = n0.kernel.spawn([&] {
    started = true;
    SplitMix64 rng(kSuiteSeed ^ 0x3000u);
    // The chain mutates at every delivery point while raisers keep firing:
    // execute_chain's snapshot must never observe a half-written chain.
    while (!stop.load(std::memory_order_acquire)) {
      auto id = n0.events.attach_handler(ev, "flicker_count", OWN_CONTEXT);
      ASSERT_TRUE(id.is_ok());
      if (!n0.kernel.sleep_for(rng.below(200) * 1us).is_ok()) return;
      ASSERT_TRUE(n0.events.detach_handler(id.value()).is_ok());
      if (!n0.kernel.poll_events().is_ok()) return;
    }
  });
  while (!started.load()) std::this_thread::sleep_for(1ms);

  std::vector<std::thread> raisers;
  for (int t = 0; t < kStormThreads; ++t) {
    raisers.emplace_back([&, t] {
      SplitMix64 rng(kSuiteSeed ^ (0x4000u + static_cast<std::uint64_t>(t)));
      for (int i = 0; i < kStormIters; ++i) {
        n0.events.raise(ev, victim);
        if (rng.chance(0.1)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : raisers) t.join();
  stop = true;
  ASSERT_TRUE(n0.kernel.join_thread(victim, 30s).is_ok());
  quiesce_and_check(cluster.network());
}

// --- 5a. network node churn with traffic in flight ---------------------------

TEST(Stress, NetworkNodeChurnWithInFlightTraffic) {
  net::NetworkConfig config;
  config.base_latency = 30us;
  config.seed = kSuiteSeed;
  net::Network network(config);

  constexpr int kNodes = 4;
  std::atomic<int> received{0};
  for (int n = 1; n <= kNodes; ++n) {
    ASSERT_TRUE(network
                    .register_node(NodeId{static_cast<std::uint64_t>(n)},
                                   [&](const net::Message&) { received++; })
                    .is_ok());
  }
  const GroupId group{77};
  ASSERT_TRUE(network.create_multicast_group(group).is_ok());
  for (int n = 1; n <= kNodes; ++n) {
    ASSERT_TRUE(network.join(group, NodeId{static_cast<std::uint64_t>(n)}).is_ok());
  }

  std::atomic<bool> stop{false};
  // Churn thread: node 3 flaps in and out of existence, and partitions to it
  // flap too, while senders keep addressing it.
  std::thread churn([&] {
    SplitMix64 rng(kSuiteSeed ^ 0x5000u);
    const NodeId flappy{3};
    while (!stop.load(std::memory_order_acquire)) {
      network.unregister_node(flappy);
      if (rng.chance(0.5)) network.partition(NodeId{1}, flappy);
      std::this_thread::sleep_for(rng.below(300) * 1us);
      network.heal(NodeId{1}, flappy);
      network.register_node(flappy, [&](const net::Message&) { received++; });
      network.join(group, flappy);
      std::this_thread::sleep_for(rng.below(300) * 1us);
    }
  });

  std::vector<std::thread> senders;
  for (int t = 0; t < kStormThreads; ++t) {
    senders.emplace_back([&, t] {
      SplitMix64 rng(kSuiteSeed ^ (0x6000u + static_cast<std::uint64_t>(t)));
      const NodeId self{static_cast<std::uint64_t>(1 + (t % kNodes))};
      for (int i = 0; i < kStormIters * 4; ++i) {
        net::Message m;
        m.from = self;
        m.to = NodeId{1 + rng.below(kNodes)};
        m.kind = 0x7E57;
        m.payload = std::vector<std::uint8_t>(rng.below(64),
                                              static_cast<std::uint8_t>(i));
        switch (rng.below(3)) {
          case 0:
            network.send(std::move(m));
            break;
          case 1:
            network.broadcast(std::move(m));
            break;
          default:
            network.multicast(group, std::move(m));
            break;
        }
      }
    });
  }
  for (auto& t : senders) t.join();
  stop = true;
  churn.join();

  quiesce_and_check(network);
  const auto stats = network.stats();
  EXPECT_GT(stats.delivered, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(received.load()), stats.delivered);
}

// --- 5b. cluster teardown with raise traffic still in flight -----------------

TEST(Stress, ClusterTeardownUnderLoad) {
  SplitMix64 rng(kSuiteSeed ^ 0x7000u);
  for (int round = 0; round < 3; ++round) {
    auto cluster = std::make_unique<Cluster>(3, stress_config());
    // Storm bodies must not read the unique_ptr slot itself — reset() writes
    // it concurrently.  The pointee stays alive until ~Cluster joins them.
    Cluster* cl = cluster.get();
    const EventId ev = cluster->registry().register_event("TEARDOWN_STORM");
    cluster->procedures().register_procedure(
        "teardown_noop",
        [](events::PerThreadCallCtx&) { return Verdict::kResume; });

    // Every node hosts storm threads that raise at threads on OTHER nodes
    // until the kernel terminates them at destruction.
    std::vector<std::pair<int, ThreadId>> storms;
    std::vector<ThreadId> victims;
    std::atomic<int> armed{0};
    for (int n = 0; n < 3; ++n) {
      auto& node = cluster->node(static_cast<std::size_t>(n));
      victims.push_back(node.kernel.spawn([cl, &armed, ev, n] {
        auto& self = cl->node(static_cast<std::size_t>(n));
        ASSERT_TRUE(
            self.events.attach_handler(ev, "teardown_noop", OWN_CONTEXT).is_ok());
        armed++;
        while (self.kernel.sleep_for(100us).is_ok()) {
        }
      }));
    }
    while (armed.load() < 3) std::this_thread::sleep_for(1ms);
    for (int n = 0; n < 3; ++n) {
      auto& node = cluster->node(static_cast<std::size_t>(n));
      const ThreadId target = victims[static_cast<std::size_t>((n + 1) % 3)];
      storms.emplace_back(n, node.kernel.spawn([cl, ev, n, target] {
        auto& self = cl->node(static_cast<std::size_t>(n));
        while (self.kernel.sleep_for(50us).is_ok()) {
          // Statuses are deliberately ignored: mid-teardown these fail with
          // kNoSuchNode/kNoSuchThread/kTimeout, and that must be safe.
          self.events.raise(ev, target);
          (void)self.events.raise_and_wait(ev, target);
        }
      }));
    }

    // Tear the whole cluster down while the storm is hot.  Unregister +
    // terminate + join must cope with raisers mid-RPC and messages on the
    // wire; ASan/TSan turn any use-after-free or race here into a failure.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(10 + rng.below(40)));
    cluster.reset();
  }
  SUCCEED();
}

// --- 6. TERMINATE-chain teardown under load (§6.3 recipe) --------------------

TEST(Stress, TerminateChainTeardownUnderLoad) {
  Cluster cluster(2, stress_config());
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  services::TerminationService termination(n0.events);
  services::TerminationService termination1(n1.events);
  const EventId ev = cluster.registry().register_event("WORK_PULSE");
  cluster.procedures().register_procedure(
      "pulse_noop", [](events::PerThreadCallCtx&) { return Verdict::kResume; });

  const GroupId group = n0.kernel.create_group();
  std::atomic<int> armed{0};
  std::vector<ThreadId> workers;
  const ThreadId root = n0.kernel.spawn(
      [&] {
        ASSERT_TRUE(termination.arm_current_thread().is_ok());
        ASSERT_TRUE(
            n0.events.attach_handler(ev, "pulse_noop", OWN_CONTEXT).is_ok());
        armed++;
        while (n0.kernel.sleep_for(100us).is_ok()) {
        }
      },
      {.group = group});
  for (int i = 0; i < 3; ++i) {
    auto& node = (i % 2 == 0) ? n1 : n0;
    workers.push_back(node.kernel.spawn(
        [&, i] {
          auto& self = (i % 2 == 0) ? n1 : n0;
          auto& my_term = (i % 2 == 0) ? termination1 : termination;
          ASSERT_TRUE(my_term.arm_current_thread().is_ok());
          ASSERT_TRUE(
              self.events.attach_handler(ev, "pulse_noop", OWN_CONTEXT).is_ok());
          armed++;
          while (self.kernel.sleep_for(100us).is_ok()) {
          }
        },
        {.group = group}));
  }
  while (armed.load() < 4) std::this_thread::sleep_for(1ms);

  // Load: raisers pound the group while ^C lands on the root.
  std::vector<std::thread> raisers;
  std::atomic<bool> stop{false};
  for (int t = 0; t < kStormThreads; ++t) {
    raisers.emplace_back([&, t] {
      SplitMix64 rng(kSuiteSeed ^ (0x8000u + static_cast<std::uint64_t>(t)));
      while (!stop.load(std::memory_order_acquire)) {
        n0.events.raise(ev, group);
        std::this_thread::sleep_for(rng.below(100) * 1us);
      }
    });
  }
  std::this_thread::sleep_for(5ms);
  ASSERT_TRUE(termination.request_termination(root).is_ok());

  // The §6.3 chain: root handler raises QUIT to the group; every member
  // terminates.  All joins must complete despite the ongoing storm.
  ASSERT_TRUE(n0.kernel.join_thread(root, 30s).is_ok());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    auto& node = (i % 2 == 0) ? n1 : n0;
    ASSERT_TRUE(node.kernel.join_thread(workers[i], 30s).is_ok());
  }
  stop = true;
  for (auto& t : raisers) t.join();
  quiesce_and_check(cluster.network());

  auto census = n0.kernel.group_census(group);
  ASSERT_TRUE(census.is_ok());
  EXPECT_TRUE(census.value().empty());
}

// --- 7. pager fault storm from many threads (§6.4) ---------------------------

TEST(Stress, PagerFaultStormManyThreads) {
  Cluster cluster(3, stress_config());
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);  // pager server node
  auto& n2 = cluster.node(2);

  const ObjectId server =
      n1.objects.add_object(services::PagerServer::make(n1.rpc));
  services::PagerClient client0(n0.events, n0.objects, n0.dsm, n0.rpc);
  services::PagerClient client2(n2.events, n2.objects, n2.dsm, n2.rpc);

  constexpr int kFaulters = 4;
  constexpr int kPages = 4;
  // One segment per faulting thread: concurrent VM_FAULT storms through the
  // surrogate pool + buddy-handler RPC path, without DSM ownership conflicts.
  for (int i = 0; i < kFaulters; ++i) {
    const SegmentId seg{900u + static_cast<std::uint64_t>(i)};
    auto& client = (i % 2 == 0) ? client0 : client2;
    ASSERT_TRUE(client.create_paged_segment(seg, kPages, server).is_ok());
  }

  std::vector<ThreadId> faulters;
  std::atomic<int> ok{0};
  for (int i = 0; i < kFaulters; ++i) {
    auto& node = (i % 2 == 0) ? n0 : n2;
    faulters.push_back(node.kernel.spawn([&, i] {
      auto& self = (i % 2 == 0) ? n0 : n2;
      auto& my_client = (i % 2 == 0) ? client0 : client2;
      const SegmentId seg{900u + static_cast<std::uint64_t>(i)};
      const std::size_t page_size = self.dsm.page_size();
      ASSERT_TRUE(my_client.arm_current_thread(server).is_ok());
      SplitMix64 rng(kSuiteSeed ^ (0x9000u + static_cast<std::uint64_t>(i)));
      for (int p = 0; p < kPages; ++p) {
        // First touch faults the page in via the buddy handler.
        auto data = self.dsm.read(seg, p * page_size, 8);
        ASSERT_TRUE(data.is_ok()) << data.status().to_string();
        std::vector<std::uint8_t> payload(8, static_cast<std::uint8_t>(i + p));
        ASSERT_TRUE(self.dsm.write(seg, p * page_size, payload).is_ok());
        ASSERT_TRUE(my_client.writeback(seg, static_cast<std::size_t>(p), server)
                        .is_ok());
        if (rng.chance(0.5)) std::this_thread::yield();
      }
      // Re-read through the pager and verify what this thread wrote.
      for (int p = 0; p < kPages; ++p) {
        auto data = self.dsm.read(seg, p * page_size, 8);
        ASSERT_TRUE(data.is_ok());
        ASSERT_EQ(data.value(),
                  std::vector<std::uint8_t>(8, static_cast<std::uint8_t>(i + p)));
      }
      ok++;
    }));
  }
  for (std::size_t i = 0; i < faulters.size(); ++i) {
    auto& node = (i % 2 == 0) ? n0 : n2;
    ASSERT_TRUE(node.kernel.join_thread(faulters[i], 60s).is_ok());
  }
  EXPECT_EQ(ok.load(), kFaulters);
  quiesce_and_check(cluster.network());
}

}  // namespace
}  // namespace doct
