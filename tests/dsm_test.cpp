// Unit tests for the DSM substrate: coherence protocol, fault accounting,
// user-level pager hooks, sequential consistency under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/id_gen.hpp"
#include "common/rng.hpp"
#include "dsm/dsm.hpp"
#include "net/demux.hpp"
#include "net/network.hpp"
#include "rpc/rpc.hpp"

namespace doct::dsm {
namespace {

// An N-node DSM cluster fixture.
class DsmCluster {
 public:
  explicit DsmCluster(int num_nodes, DsmConfig config = {.page_size = 64}) {
    for (int i = 1; i <= num_nodes; ++i) {
      auto node = std::make_unique<Node>();
      node->id = NodeId{static_cast<std::uint64_t>(i)};
      EXPECT_TRUE(net.register_node(node->id, node->demux.as_handler()).is_ok());
      node->rpc = std::make_unique<rpc::RpcEndpoint>(net, node->demux, node->id, ids);
      node->dsm = std::make_unique<DsmEngine>(*node->rpc, node->id, config);
      nodes.push_back(std::move(node));
    }
  }

  // Members destruct in reverse order, so `nodes` (and their RpcEndpoints)
  // die before `net` stops delivering; unregister every node first so a late
  // retransmit cannot race endpoint teardown.
  ~DsmCluster() {
    for (auto& node : nodes) (void)net.crash_node(node->id);
  }

  DsmEngine& operator[](int i) { return *nodes[static_cast<size_t>(i)]->dsm; }

  struct Node {
    NodeId id;
    net::Demux demux;
    std::unique_ptr<rpc::RpcEndpoint> rpc;
    std::unique_ptr<DsmEngine> dsm;
  };

  net::Network net;
  IdGenerator ids;
  std::vector<std::unique_ptr<Node>> nodes;
};

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> il) {
  return {il};
}

TEST(Dsm, CreateAndLocalReadWrite) {
  DsmCluster cluster(1);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 4).is_ok());

  auto initial = cluster[0].read(seg, 0, 8);
  ASSERT_TRUE(initial.is_ok());
  EXPECT_EQ(initial.value(), std::vector<std::uint8_t>(8, 0));

  ASSERT_TRUE(cluster[0].write(seg, 3, bytes({1, 2, 3})).is_ok());
  auto readback = cluster[0].read(seg, 3, 3);
  ASSERT_TRUE(readback.is_ok());
  EXPECT_EQ(readback.value(), bytes({1, 2, 3}));
}

TEST(Dsm, CreateValidation) {
  DsmCluster cluster(1);
  EXPECT_EQ(cluster[0].create_segment(SegmentId{}, 4).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster[0].create_segment(SegmentId{1}, 0).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(cluster[0].create_segment(SegmentId{1}, 4).is_ok());
  EXPECT_EQ(cluster[0].create_segment(SegmentId{1}, 4).code(),
            StatusCode::kAlreadyExists);
}

TEST(Dsm, OutOfBoundsRejected) {
  DsmCluster cluster(1);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 2).is_ok());  // 128 bytes
  EXPECT_EQ(cluster[0].read(seg, 120, 16).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<std::uint8_t> big(16, 7);
  EXPECT_EQ(cluster[0].write(seg, 120, big).code(),
            StatusCode::kInvalidArgument);
}

TEST(Dsm, UnknownSegmentRejected) {
  DsmCluster cluster(1);
  EXPECT_EQ(cluster[0].read(SegmentId{9}, 0, 1).status().code(),
            StatusCode::kNoSuchObject);
}

TEST(Dsm, RemoteReadFaultsPageIn) {
  DsmCluster cluster(2);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 2).is_ok());
  ASSERT_TRUE(cluster[1].attach_segment(seg, NodeId{1}, 2).is_ok());
  ASSERT_TRUE(cluster[0].write(seg, 0, bytes({42})).is_ok());

  auto remote = cluster[1].read(seg, 0, 1);
  ASSERT_TRUE(remote.is_ok()) << remote.status().to_string();
  EXPECT_EQ(remote.value(), bytes({42}));
  EXPECT_EQ(cluster[1].stats().read_faults, 1u);
  EXPECT_EQ(cluster[1].stats().pages_fetched, 1u);
  EXPECT_EQ(cluster[1].page_state(seg, 0), PageState::kShared);
}

TEST(Dsm, SecondReadHitsLocally) {
  DsmCluster cluster(2);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 1).is_ok());
  ASSERT_TRUE(cluster[1].attach_segment(seg, NodeId{1}, 1).is_ok());
  ASSERT_TRUE(cluster[1].read(seg, 0, 1).is_ok());
  ASSERT_TRUE(cluster[1].read(seg, 0, 1).is_ok());
  EXPECT_EQ(cluster[1].stats().read_faults, 1u);  // second read: no fault
}

TEST(Dsm, WriteTransfersOwnership) {
  DsmCluster cluster(2);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 1).is_ok());
  ASSERT_TRUE(cluster[1].attach_segment(seg, NodeId{1}, 1).is_ok());

  ASSERT_TRUE(cluster[1].write(seg, 0, bytes({7})).is_ok());
  EXPECT_EQ(cluster[1].page_state(seg, 0), PageState::kOwned);
  EXPECT_EQ(cluster[0].page_state(seg, 0), PageState::kInvalid);
  EXPECT_EQ(cluster[0].stats().ownership_transfers, 1u);

  // Home reads it back: faults, fetches from the new owner.
  auto readback = cluster[0].read(seg, 0, 1);
  ASSERT_TRUE(readback.is_ok());
  EXPECT_EQ(readback.value(), bytes({7}));
}

TEST(Dsm, WriteInvalidatesAllReaders) {
  DsmCluster cluster(4);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 1).is_ok());
  for (int i = 1; i < 4; ++i) {
    ASSERT_TRUE(cluster[i].attach_segment(seg, NodeId{1}, 1).is_ok());
  }
  // Everyone reads: 3 shared copies + owner.
  for (int i = 1; i < 4; ++i) ASSERT_TRUE(cluster[i].read(seg, 0, 1).is_ok());

  // Node 3 writes: nodes 1 and 2 must lose their copies.
  ASSERT_TRUE(cluster[3].write(seg, 0, bytes({9})).is_ok());
  EXPECT_EQ(cluster[1].page_state(seg, 0), PageState::kInvalid);
  EXPECT_EQ(cluster[2].page_state(seg, 0), PageState::kInvalid);
  EXPECT_EQ(cluster[3].page_state(seg, 0), PageState::kOwned);

  // Fresh reads see the new value.
  for (int i = 0; i < 3; ++i) {
    auto r = cluster[i].read(seg, 0, 1);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value(), bytes({9}));
  }
}

TEST(Dsm, OwnerDowngradedOnRemoteRead) {
  DsmCluster cluster(2);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 1).is_ok());
  ASSERT_TRUE(cluster[1].attach_segment(seg, NodeId{1}, 1).is_ok());
  EXPECT_EQ(cluster[0].page_state(seg, 0), PageState::kOwned);
  ASSERT_TRUE(cluster[1].read(seg, 0, 1).is_ok());
  // Home gave out a copy, so its own copy is no longer exclusive.
  EXPECT_EQ(cluster[0].page_state(seg, 0), PageState::kShared);
  // A subsequent home write must re-upgrade (write fault at the home).
  ASSERT_TRUE(cluster[0].write(seg, 0, bytes({5})).is_ok());
  EXPECT_EQ(cluster[0].page_state(seg, 0), PageState::kOwned);
  EXPECT_EQ(cluster[1].page_state(seg, 0), PageState::kInvalid);
}

TEST(Dsm, MultiPageWriteSpansBoundaries) {
  DsmCluster cluster(2, DsmConfig{.page_size = 8});
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 4).is_ok());
  ASSERT_TRUE(cluster[1].attach_segment(seg, NodeId{1}, 4).is_ok());

  std::vector<std::uint8_t> pattern(20);
  for (size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::uint8_t>(i + 1);
  }
  ASSERT_TRUE(cluster[1].write(seg, 5, pattern).is_ok());  // pages 0..3
  auto readback = cluster[0].read(seg, 5, pattern.size());
  ASSERT_TRUE(readback.is_ok());
  EXPECT_EQ(readback.value(), pattern);
}

TEST(Dsm, UserPagedSegmentRequiresHook) {
  DsmCluster cluster(1);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 1, SegmentMode::kUserPaged).is_ok());
  EXPECT_EQ(cluster[0].read(seg, 0, 1).status().code(), StatusCode::kNoHandler);
}

TEST(Dsm, UserPagerSuppliesPages) {
  DsmCluster cluster(1, DsmConfig{.page_size = 16});
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 4, SegmentMode::kUserPaged).is_ok());

  std::atomic<int> faults{0};
  ASSERT_TRUE(cluster[0]
                  .set_fault_hook(seg,
                                  [&](const FaultInfo& info)
                                      -> Result<std::optional<std::vector<std::uint8_t>>> {
                                    faults++;
                                    std::vector<std::uint8_t> page(
                                        16, static_cast<std::uint8_t>(info.page));
                                    return std::optional{std::move(page)};
                                  })
                  .is_ok());

  auto page2 = cluster[0].read(seg, 2 * 16, 4);
  ASSERT_TRUE(page2.is_ok());
  EXPECT_EQ(page2.value(), std::vector<std::uint8_t>(4, 2));
  EXPECT_EQ(faults.load(), 1);
  EXPECT_EQ(cluster[0].stats().user_pager_fills, 1u);

  // Second access: no new fault.
  ASSERT_TRUE(cluster[0].read(seg, 2 * 16, 4).is_ok());
  EXPECT_EQ(faults.load(), 1);
}

TEST(Dsm, UserPagerErrorFailsAccess) {
  DsmCluster cluster(1);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 1, SegmentMode::kUserPaged).is_ok());
  ASSERT_TRUE(cluster[0]
                  .set_fault_hook(seg,
                                  [](const FaultInfo&)
                                      -> Result<std::optional<std::vector<std::uint8_t>>> {
                                    return Status{StatusCode::kPermissionDenied,
                                                  "segment fenced"};
                                  })
                  .is_ok());
  EXPECT_EQ(cluster[0].read(seg, 0, 1).status().code(),
            StatusCode::kPermissionDenied);
}

TEST(Dsm, UserPagerDeclineFailsUserPagedAccess) {
  DsmCluster cluster(1);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 1, SegmentMode::kUserPaged).is_ok());
  ASSERT_TRUE(cluster[0]
                  .set_fault_hook(seg,
                                  [](const FaultInfo&)
                                      -> Result<std::optional<std::vector<std::uint8_t>>> {
                                    return std::optional<std::vector<std::uint8_t>>{};
                                  })
                  .is_ok());
  EXPECT_EQ(cluster[0].read(SegmentId{1}, 0, 1).status().code(),
            StatusCode::kNoHandler);
}

TEST(Dsm, ObservationalHookOnDefaultSegment) {
  DsmCluster cluster(2);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 1).is_ok());
  ASSERT_TRUE(cluster[1].attach_segment(seg, NodeId{1}, 1).is_ok());

  std::atomic<int> observed{0};
  ASSERT_TRUE(cluster[1]
                  .set_fault_hook(seg,
                                  [&](const FaultInfo&)
                                      -> Result<std::optional<std::vector<std::uint8_t>>> {
                                    observed++;
                                    return std::optional<std::vector<std::uint8_t>>{};
                                  })
                  .is_ok());
  ASSERT_TRUE(cluster[1].read(seg, 0, 1).is_ok());  // protocol still runs
  EXPECT_EQ(observed.load(), 1);
  EXPECT_EQ(cluster[1].page_state(seg, 0), PageState::kShared);

  ASSERT_TRUE(cluster[1].clear_fault_hook(seg).is_ok());
  ASSERT_TRUE(cluster[1].evict_page(seg, 0).is_ok());
  ASSERT_TRUE(cluster[1].read(seg, 0, 1).is_ok());
  EXPECT_EQ(observed.load(), 1);  // hook cleared: not called again
}

TEST(Dsm, EvictForcesRefault) {
  DsmCluster cluster(2);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 1).is_ok());
  ASSERT_TRUE(cluster[1].attach_segment(seg, NodeId{1}, 1).is_ok());
  ASSERT_TRUE(cluster[1].read(seg, 0, 1).is_ok());
  ASSERT_TRUE(cluster[1].evict_page(seg, 0).is_ok());
  EXPECT_EQ(cluster[1].page_state(seg, 0), PageState::kInvalid);
  ASSERT_TRUE(cluster[1].read(seg, 0, 1).is_ok());
  EXPECT_EQ(cluster[1].stats().read_faults, 2u);
}

TEST(Dsm, InstallPagePrePopulates) {
  DsmCluster cluster(1, DsmConfig{.page_size = 8});
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 2, SegmentMode::kUserPaged).is_ok());
  ASSERT_TRUE(cluster[0].install_page(seg, 1, bytes({9, 8, 7}), PageState::kOwned).is_ok());
  auto r = cluster[0].read(seg, 8, 3);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), bytes({9, 8, 7}));
}

// Sequential-consistency stress: single page, one writer bumping a counter,
// several readers; readers must observe a non-decreasing sequence.
TEST(Dsm, MonotoneCounterAcrossNodes) {
  DsmCluster cluster(3);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 1).is_ok());
  ASSERT_TRUE(cluster[1].attach_segment(seg, NodeId{1}, 1).is_ok());
  ASSERT_TRUE(cluster[2].attach_segment(seg, NodeId{1}, 1).is_ok());

  constexpr std::uint8_t kMax = 50;
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (std::uint8_t v = 1; v <= kMax; ++v) {
      if (!cluster[1].write(seg, 0, std::vector<std::uint8_t>{v}).is_ok()) {
        failed = true;
        return;
      }
    }
  });
  std::thread reader([&] {
    std::uint8_t last = 0;
    while (last < kMax && !failed.load()) {
      auto r = cluster[2].read(seg, 0, 1);
      if (!r.is_ok()) {
        failed = true;
        return;
      }
      const std::uint8_t v = r.value()[0];
      if (v < last) {
        failed = true;  // time went backwards: SC violation
        return;
      }
      last = v;
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(failed.load());
}

// Property sweep: random read/write traffic from every node must leave all
// nodes agreeing with a reference copy maintained under a global lock.
class DsmRandomTrafficTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DsmRandomTrafficTest, ConvergesToReferenceCopy) {
  constexpr int kNodes = 3;
  constexpr std::size_t kPages = 4;
  constexpr std::size_t kPageSize = 16;
  DsmCluster cluster(kNodes, DsmConfig{.page_size = kPageSize});
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, kPages).is_ok());
  for (int i = 1; i < kNodes; ++i) {
    ASSERT_TRUE(cluster[i].attach_segment(seg, NodeId{1}, kPages).is_ok());
  }

  std::vector<std::uint8_t> reference(kPages * kPageSize, 0);
  std::mutex ref_mu;  // serializes op + reference update per step
  SplitMix64 rng(GetParam());

  for (int step = 0; step < 200; ++step) {
    const int node = static_cast<int>(rng.below(kNodes));
    const std::size_t offset = rng.below(reference.size());
    const std::size_t len =
        1 + rng.below(std::min<std::size_t>(24, reference.size() - offset));
    if (rng.chance(0.5)) {
      std::vector<std::uint8_t> data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
      std::lock_guard<std::mutex> lock(ref_mu);
      ASSERT_TRUE(cluster[node].write(seg, offset, data).is_ok());
      std::copy(data.begin(), data.end(),
                reference.begin() + static_cast<long>(offset));
    } else {
      std::lock_guard<std::mutex> lock(ref_mu);
      auto r = cluster[node].read(seg, offset, len);
      ASSERT_TRUE(r.is_ok());
      const std::vector<std::uint8_t> expected(
          reference.begin() + static_cast<long>(offset),
          reference.begin() + static_cast<long>(offset + len));
      ASSERT_EQ(r.value(), expected) << "step " << step << " node " << node;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsmRandomTrafficTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// Concurrent writers to disjoint pages must not interfere.
TEST(Dsm, ConcurrentWritersDisjointPages) {
  constexpr int kNodes = 4;
  DsmCluster cluster(kNodes, DsmConfig{.page_size = 32});
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, kNodes).is_ok());
  for (int i = 1; i < kNodes; ++i) {
    ASSERT_TRUE(cluster[i].attach_segment(seg, NodeId{1}, kNodes).is_ok());
  }
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int i = 0; i < kNodes; ++i) {
    writers.emplace_back([&, i] {
      for (int round = 0; round < 20; ++round) {
        std::vector<std::uint8_t> data(32, static_cast<std::uint8_t>(i + 1));
        if (!cluster[i].write(seg, static_cast<size_t>(i) * 32, data).is_ok()) {
          failures++;
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  ASSERT_EQ(failures.load(), 0);
  for (int i = 0; i < kNodes; ++i) {
    auto r = cluster[0].read(seg, static_cast<size_t>(i) * 32, 32);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value(),
              std::vector<std::uint8_t>(32, static_cast<std::uint8_t>(i + 1)));
  }
}

// Contended single page: every node increments a 64-bit counter under an
// external lock; the final value must equal the total increment count.
TEST(Dsm, ContendedPageUnderExternalLock) {
  constexpr int kNodes = 3;
  constexpr int kIncrements = 30;
  DsmCluster cluster(kNodes);
  const SegmentId seg{1};
  ASSERT_TRUE(cluster[0].create_segment(seg, 1).is_ok());
  for (int i = 1; i < kNodes; ++i) {
    ASSERT_TRUE(cluster[i].attach_segment(seg, NodeId{1}, 1).is_ok());
  }
  std::mutex app_lock;
  std::vector<std::thread> threads;
  for (int i = 0; i < kNodes; ++i) {
    threads.emplace_back([&, i] {
      for (int n = 0; n < kIncrements; ++n) {
        std::lock_guard<std::mutex> lock(app_lock);
        auto r = cluster[i].read(seg, 0, 8);
        ASSERT_TRUE(r.is_ok());
        Reader reader(r.value());
        auto v = reader.get<std::uint64_t>();
        Writer w;
        w.put(v + 1);
        ASSERT_TRUE(cluster[i].write(seg, 0, std::move(w).take()).is_ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  auto final = cluster[0].read(seg, 0, 8);
  ASSERT_TRUE(final.is_ok());
  Reader reader(final.value());
  EXPECT_EQ(reader.get<std::uint64_t>(),
            static_cast<std::uint64_t>(kNodes * kIncrements));
}

}  // namespace
}  // namespace doct::dsm
