// Kernel tests: spawn/join, attribute inheritance, delivery points,
// interruptible waits, timers, tombstones, wait tokens.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>

#include "runtime/runtime.hpp"

namespace doct::kernel {
namespace {

using namespace std::chrono_literals;
using runtime::Cluster;

TEST(KernelThreads, SpawnRunsBodyAndJoins) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  std::atomic<bool> ran{false};
  const ThreadId tid = k.spawn([&] { ran = true; });
  ASSERT_TRUE(k.join_thread(tid).is_ok());
  EXPECT_TRUE(ran.load());
}

TEST(KernelThreads, JoinUnknownThreadFails) {
  Cluster cluster(1);
  EXPECT_EQ(cluster.node(0).kernel.join_thread(ThreadId{999}).code(),
            StatusCode::kNoSuchThread);
}

TEST(KernelThreads, CurrentIsSetInsideBodyAndNullOutside) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  EXPECT_EQ(Kernel::current(), nullptr);
  std::atomic<bool> ok{false};
  const ThreadId tid = k.spawn([&] {
    ThreadContext* ctx = Kernel::current();
    ok = ctx != nullptr && ctx->tid().valid();
  });
  ASSERT_TRUE(k.join_thread(tid).is_ok());
  EXPECT_TRUE(ok.load());
}

TEST(KernelThreads, ThreadIdRootNodeIsSpawningNode) {
  Cluster cluster(2);
  auto& k1 = cluster.node(1).kernel;
  const ThreadId tid = k1.spawn([] {});
  EXPECT_EQ(IdGenerator::thread_root_node(tid), k1.self());
  ASSERT_TRUE(k1.join_thread(tid).is_ok());
}

TEST(KernelThreads, FreshThreadGetsFreshGroup) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  GroupId g1, g2;
  const ThreadId t1 = k.spawn([&] {
    g1 = Kernel::current()->attributes().group;
  });
  const ThreadId t2 = k.spawn([&] {
    g2 = Kernel::current()->attributes().group;
  });
  ASSERT_TRUE(k.join_thread(t1).is_ok());
  ASSERT_TRUE(k.join_thread(t2).is_ok());
  EXPECT_TRUE(g1.valid());
  EXPECT_TRUE(g2.valid());
  EXPECT_NE(g1, g2);
}

TEST(KernelThreads, ChildInheritsAttributes) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  std::atomic<bool> ok{false};
  ThreadId parent_tid;
  const ThreadId tid = k.spawn([&] {
    ThreadContext* ctx = Kernel::current();
    parent_tid = ctx->tid();
    ctx->attributes().io_channel = "tty7";
    ctx->attributes().user["color"] = "blue";
    const ThreadId child = k.spawn([&] {
      ThreadContext* cctx = Kernel::current();
      ok = cctx->attributes().io_channel == "tty7" &&
           cctx->attributes().user.at("color") == "blue" &&
           cctx->attributes().creator == parent_tid &&
           cctx->attributes().group ==
               Kernel::current()->attributes().group;
    });
    k.join_thread(child);
  });
  ASSERT_TRUE(k.join_thread(tid).is_ok());
  EXPECT_TRUE(ok.load());
}

TEST(KernelThreads, ChildInheritsHandlerChain) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  std::atomic<size_t> child_chain{0};
  const ThreadId tid = k.spawn([&] {
    Kernel::current()->attributes().handler_chain.push_back(
        HandlerRecord{HandlerId{1}, EventId{5}, HandlerKind::kPerThread,
                      ObjectId{}, "proc", ObjectId{}});
    const ThreadId child = k.spawn([&] {
      child_chain = Kernel::current()->attributes().handler_chain.size();
    });
    k.join_thread(child);
  });
  ASSERT_TRUE(k.join_thread(tid).is_ok());
  EXPECT_EQ(child_chain.load(), 1u);
}

TEST(KernelThreads, SpawnOptionsOverrideGroup) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  const GroupId group = k.create_group();
  std::atomic<bool> ok{false};
  SpawnOptions options;
  options.group = group;
  const ThreadId tid = k.spawn(
      [&] { ok = Kernel::current()->attributes().group == group; }, options);
  ASSERT_TRUE(k.join_thread(tid).is_ok());
  EXPECT_TRUE(ok.load());
}

TEST(KernelThreads, LocalThreadsAndGroupMembers) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  const GroupId group = k.create_group();
  std::atomic<bool> release{false};
  SpawnOptions options;
  options.group = group;
  std::vector<ThreadId> tids;
  for (int i = 0; i < 3; ++i) {
    tids.push_back(k.spawn(
        [&] {
          while (!release.load()) {
            if (!k.sleep_for(1ms).is_ok()) return;
          }
        },
        options));
  }
  // Wait until all three are registered and present.
  for (int i = 0; i < 200 && k.local_group_members(group).size() < 3; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(k.local_group_members(group).size(), 3u);
  EXPECT_GE(k.local_threads().size(), 3u);
  release = true;
  for (ThreadId tid : tids) ASSERT_TRUE(k.join_thread(tid).is_ok());
  EXPECT_TRUE(k.local_group_members(group).empty());
}

TEST(KernelThreads, TombstoneAfterExit) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  const ThreadId tid = k.spawn([] {});
  ASSERT_TRUE(k.join_thread(tid).is_ok());
  EXPECT_TRUE(k.is_tombstoned(tid));
}

TEST(KernelDelivery, DeliverLocalQueuesNotice) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  std::atomic<int> handled{0};
  k.set_delivery_callback(
      [&](ThreadContext&, const EventNotice&) {
        handled++;
        return Verdict::kResume;
      });
  std::atomic<bool> release{false};
  const ThreadId tid = k.spawn([&] {
    while (!release.load()) {
      if (!k.sleep_for(1ms).is_ok()) return;
    }
  });
  EventNotice notice;
  notice.event = EventId{42};
  notice.target_thread = tid;
  // Wait for the thread to register.
  for (int i = 0; i < 200 && !k.deliver_local(notice, false).is_ok(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  for (int i = 0; i < 200 && handled.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(handled.load(), 1);
  release = true;
  ASSERT_TRUE(k.join_thread(tid).is_ok());
}

TEST(KernelDelivery, DeliverToDeadThreadReportsDeadTarget) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  const ThreadId tid = k.spawn([] {});
  ASSERT_TRUE(k.join_thread(tid).is_ok());
  EventNotice notice;
  notice.event = EventId{42};
  notice.target_thread = tid;
  EXPECT_EQ(k.deliver_local(notice, false).code(), StatusCode::kDeadTarget);
}

TEST(KernelDelivery, DeliverToUnknownThreadReportsNoSuchThread) {
  Cluster cluster(1);
  EventNotice notice;
  notice.event = EventId{42};
  notice.target_thread = ThreadId{777};
  EXPECT_EQ(cluster.node(0).kernel.deliver_local(notice, false).code(),
            StatusCode::kNoSuchThread);
}

TEST(KernelDelivery, TerminateVerdictStopsThread) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  k.set_delivery_callback([](ThreadContext&, const EventNotice&) {
    return Verdict::kTerminate;
  });
  std::atomic<bool> past_loop{false};
  const ThreadId tid = k.spawn([&] {
    // Sleep "forever"; the terminate verdict must break the sleep.
    const Status s = k.sleep_for(10s);
    past_loop = s.code() == StatusCode::kTerminated;
  });
  EventNotice notice;
  notice.event = EventId{1};
  notice.target_thread = tid;
  for (int i = 0; i < 200 && !k.deliver_local(notice, true).is_ok(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(k.join_thread(tid, 5s).is_ok());
  EXPECT_TRUE(past_loop.load());
}

TEST(KernelDelivery, UrgentNoticesOvertakeOrdinary) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  std::vector<std::uint64_t> order;
  std::mutex order_mu;
  k.set_delivery_callback(
      [&](ThreadContext&, const EventNotice& notice) {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(notice.event.value());
        return Verdict::kResume;
      });
  std::atomic<bool> go{false};
  std::atomic<bool> done{false};
  const ThreadId tid = k.spawn([&] {
    while (!go.load()) std::this_thread::sleep_for(1ms);
    k.poll_events();
    done = true;
  });
  // Queue ordinary 1,2 then urgent 99 while the thread is not polling.
  EventNotice n;
  n.target_thread = tid;
  n.event = EventId{1};
  for (int i = 0; i < 200 && !k.deliver_local(n, false).is_ok(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  n.event = EventId{2};
  ASSERT_TRUE(k.deliver_local(n, false).is_ok());
  n.event = EventId{99};
  ASSERT_TRUE(k.deliver_local(n, true).is_ok());
  go = true;
  ASSERT_TRUE(k.join_thread(tid).is_ok());
  ASSERT_TRUE(done.load());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 99u);  // urgent first
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
}

TEST(KernelDelivery, GroupDeliveryReachesAllLocalMembers) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  std::atomic<int> handled{0};
  k.set_delivery_callback(
      [&](ThreadContext&, const EventNotice&) {
        handled++;
        return Verdict::kResume;
      });
  const GroupId group = k.create_group();
  SpawnOptions options;
  options.group = group;
  std::atomic<bool> release{false};
  std::vector<ThreadId> tids;
  for (int i = 0; i < 3; ++i) {
    tids.push_back(k.spawn(
        [&] {
          while (!release.load()) {
            if (!k.sleep_for(1ms).is_ok()) return;
          }
        },
        options));
  }
  for (int i = 0; i < 200 && k.local_group_members(group).size() < 3; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EventNotice notice;
  notice.event = EventId{7};
  notice.target_group = group;
  EXPECT_EQ(k.deliver_group_local(notice, false), 3u);
  for (int i = 0; i < 200 && handled.load() < 3; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(handled.load(), 3);
  release = true;
  for (ThreadId tid : tids) ASSERT_TRUE(k.join_thread(tid).is_ok());
}

TEST(KernelWaiters, ResumeWakesAwaiter) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  const std::uint64_t token = k.new_wait_token();
  std::thread resumer([&] {
    std::this_thread::sleep_for(20ms);
    EXPECT_TRUE(k.resume_waiter(token, Verdict::kResume).is_ok());
  });
  auto verdict = k.await_resume(token, 5s);
  resumer.join();
  ASSERT_TRUE(verdict.is_ok()) << verdict.status().to_string();
  EXPECT_EQ(verdict.value(), Verdict::kResume);
}

TEST(KernelWaiters, AwaitTimesOutWithoutResume) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  const auto verdict = k.await_resume(k.new_wait_token(), 30ms);
  EXPECT_EQ(verdict.status().code(), StatusCode::kTimeout);
}

TEST(KernelWaiters, ResumeUnknownTokenFails) {
  Cluster cluster(1);
  EXPECT_EQ(cluster.node(0).kernel.resume_waiter(12345, Verdict::kResume).code(),
            StatusCode::kNoSuchThread);
}

TEST(KernelWaiters, DoubleResumeRejected) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  const std::uint64_t token = k.new_wait_token();
  // Register the waiter entry up front so both resume calls are ordered
  // before the await — a blocked waiter could otherwise consume the token
  // between the two resumes and turn the second into kNoSuchThread.
  k.prepare_wait(token);
  EXPECT_TRUE(k.resume_waiter(token, Verdict::kTerminate).is_ok());
  EXPECT_EQ(k.resume_waiter(token, Verdict::kResume).code(),
            StatusCode::kAlreadyExists);
  auto verdict = k.await_resume(token, 5s);
  ASSERT_TRUE(verdict.is_ok());
  EXPECT_EQ(verdict.value(), Verdict::kTerminate);
}

TEST(KernelTimers, PeriodicTimerFires) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  std::atomic<int> fires{0};
  k.set_delivery_callback(
      [&](ThreadContext&, const EventNotice& notice) {
        if (notice.event == EventId{5}) fires++;
        return Verdict::kResume;
      });
  const ThreadId tid = k.spawn([&] {
    ThreadContext* ctx = Kernel::current();
    ASSERT_TRUE(k.add_timer(*ctx, TimerRecord{EventId{5}, 5000, false}).is_ok());
    // Sleep long enough for several 5ms periods; sleeping is a delivery point.
    for (int i = 0; i < 100 && fires.load() < 3; ++i) {
      if (!k.sleep_for(5ms).is_ok()) return;
    }
  });
  ASSERT_TRUE(k.join_thread(tid, 10s).is_ok());
  EXPECT_GE(fires.load(), 3);
}

TEST(KernelTimers, OneShotFiresOnceAndUnregisters) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  std::atomic<int> fires{0};
  std::atomic<size_t> timers_left{99};
  k.set_delivery_callback(
      [&](ThreadContext&, const EventNotice& notice) {
        if (notice.event == EventId{8}) fires++;
        return Verdict::kResume;
      });
  const ThreadId tid = k.spawn([&] {
    ThreadContext* ctx = Kernel::current();
    ASSERT_TRUE(k.add_timer(*ctx, TimerRecord{EventId{8}, 3000, true}).is_ok());
    for (int i = 0; i < 100 && fires.load() < 1; ++i) {
      if (!k.sleep_for(3ms).is_ok()) return;
    }
    k.sleep_for(15ms);  // would fire again if periodic
    timers_left = ctx->with_attributes(
        [](ThreadAttributes& a) { return a.timers.size(); });
  });
  ASSERT_TRUE(k.join_thread(tid, 10s).is_ok());
  EXPECT_EQ(fires.load(), 1);
  EXPECT_EQ(timers_left.load(), 0u);  // one-shot removed from attributes
}

TEST(KernelTimers, RemoveTimerStopsFiring) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  std::atomic<int> fires{0};
  k.set_delivery_callback(
      [&](ThreadContext&, const EventNotice&) {
        fires++;
        return Verdict::kResume;
      });
  const ThreadId tid = k.spawn([&] {
    ThreadContext* ctx = Kernel::current();
    ASSERT_TRUE(k.add_timer(*ctx, TimerRecord{EventId{5}, 2000, false}).is_ok());
    for (int i = 0; i < 100 && fires.load() < 1; ++i) {
      if (!k.sleep_for(2ms).is_ok()) return;
    }
    ASSERT_TRUE(k.remove_timer(*ctx, EventId{5}).is_ok());
    const int count = fires.load();
    k.sleep_for(20ms);
    EXPECT_LE(fires.load(), count + 1);  // at most one in-flight straggler
  });
  ASSERT_TRUE(k.join_thread(tid, 10s).is_ok());
}

TEST(KernelTimers, ZeroPeriodRejected) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  const ThreadId tid = k.spawn([&] {
    EXPECT_EQ(
        k.add_timer(*Kernel::current(), TimerRecord{EventId{5}, 0, false})
            .code(),
        StatusCode::kInvalidArgument);
  });
  ASSERT_TRUE(k.join_thread(tid).is_ok());
}

TEST(KernelWait, WaitUntilSatisfiedByOtherThread) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  std::atomic<bool> flag{false};
  std::atomic<bool> ok{false};
  const ThreadId tid = k.spawn([&] {
    ThreadContext* ctx = Kernel::current();
    ok = k.wait_until(*ctx, [&] { return flag.load(); }, 5s).is_ok();
  });
  std::this_thread::sleep_for(20ms);
  flag = true;
  ASSERT_TRUE(k.join_thread(tid).is_ok());
  EXPECT_TRUE(ok.load());
}

TEST(KernelWait, WaitUntilTimesOut) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  std::atomic<bool> timed_out{false};
  const ThreadId tid = k.spawn([&] {
    ThreadContext* ctx = Kernel::current();
    timed_out = k.wait_until(*ctx, [] { return false; }, 30ms).code() ==
                StatusCode::kTimeout;
  });
  ASSERT_TRUE(k.join_thread(tid).is_ok());
  EXPECT_TRUE(timed_out.load());
}

TEST(KernelGroups, CensusCollectsMembersAcrossNodes) {
  Cluster cluster(3);
  auto& k0 = cluster.node(0).kernel;
  const GroupId group = k0.create_group();
  SpawnOptions options;
  options.group = group;
  std::atomic<bool> release{false};
  std::vector<std::pair<int, ThreadId>> members;
  for (int n = 0; n < 3; ++n) {
    auto& node = cluster.node(static_cast<std::size_t>(n));
    members.emplace_back(n, node.kernel.spawn(
                                [&node, &release] {
                                  while (!release.load()) {
                                    if (!node.kernel.sleep_for(1ms).is_ok()) {
                                      return;
                                    }
                                  }
                                },
                                options));
  }
  // Wait until every node sees its member locally.
  for (int i = 0; i < 500; ++i) {
    std::size_t present = 0;
    for (int n = 0; n < 3; ++n) {
      present += cluster.node(static_cast<std::size_t>(n))
                     .kernel.local_group_members(group)
                     .size();
    }
    if (present == 3) break;
    std::this_thread::sleep_for(1ms);
  }

  auto census = k0.group_census(group);
  ASSERT_TRUE(census.is_ok());
  ASSERT_EQ(census.value().size(), 3u);
  std::vector<ThreadId> expected;
  for (auto& [n, tid] : members) expected.push_back(tid);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(census.value(), expected);

  release = true;
  for (auto& [n, tid] : members) {
    ASSERT_TRUE(
        cluster.node(static_cast<std::size_t>(n)).kernel.join_thread(tid).is_ok());
  }
  // After death, the census is empty.
  auto empty = k0.group_census(group);
  ASSERT_TRUE(empty.is_ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(KernelGroups, CensusOfUnknownGroupIsEmpty) {
  Cluster cluster(2);
  auto census = cluster.node(0).kernel.group_census(GroupId{987654});
  ASSERT_TRUE(census.is_ok());
  EXPECT_TRUE(census.value().empty());
}

TEST(KernelStats, CountsSpawnsAndTerminations) {
  Cluster cluster(1);
  auto& k = cluster.node(0).kernel;
  k.reset_stats();
  const ThreadId tid = k.spawn([] {});
  ASSERT_TRUE(k.join_thread(tid).is_ok());
  EXPECT_EQ(k.stats().threads_spawned, 1u);
  EXPECT_EQ(k.stats().threads_terminated, 1u);
}

}  // namespace
}  // namespace doct::kernel
