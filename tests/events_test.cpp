// EventSystem tests — the paper's core semantics (§3–§5):
// naming/registry, thread-based handlers (per-thread OWN_CONTEXT, object
// entry, buddy), LIFO chaining with propagation, default actions, sync and
// async raising to threads/groups/objects, surrogate execution for
// self-raised exceptions, handlers travelling with threads, dead targets,
// passive-object activation on event delivery.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "events/event_system.hpp"
#include "runtime/runtime.hpp"

namespace doct::events {
namespace {

using namespace std::chrono_literals;
using kernel::Verdict;
using runtime::Cluster;

rpc::Payload verdict_bytes(Verdict v) {
  return rpc::Payload{static_cast<std::uint8_t>(v)};
}

TEST(Registry, SystemEventsPreRegistered) {
  EventRegistry registry;
  auto terminate = registry.lookup("TERMINATE");
  ASSERT_TRUE(terminate.is_ok());
  EXPECT_EQ(terminate.value(), sys::kTerminate);
  EXPECT_TRUE(registry.is_control(sys::kTerminate));
  EXPECT_EQ(registry.default_action(sys::kTerminate),
            DefaultAction::kTerminate);
  EXPECT_EQ(registry.default_action(sys::kTimer), DefaultAction::kIgnore);
  EXPECT_FALSE(registry.is_control(sys::kTimer));
  EXPECT_GE(registry.all().size(), 11u);
}

TEST(Registry, UserEventRegistrationIdempotent) {
  EventRegistry registry;
  const EventId commit = registry.register_event("COMMIT");
  EXPECT_EQ(registry.register_event("COMMIT"), commit);
  EXPECT_GE(commit.value(), sys::kFirstUserEvent);
  EXPECT_EQ(registry.name_of(commit), "COMMIT");
  EXPECT_EQ(registry.lookup("NOPE").status().code(),
            StatusCode::kUnknownEvent);
  EXPECT_EQ(registry.info(EventId{9999}).status().code(),
            StatusCode::kUnknownEvent);
}

TEST(Events, AttachRequiresLogicalThread) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  EXPECT_EQ(n0.events.attach_handler(sys::kInterrupt, ObjectId{1}, "h")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(Events, AttachUnknownEventOrProcedureFails) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ThreadId tid = n0.kernel.spawn([&] {
    EXPECT_EQ(
        n0.events.attach_handler(EventId{9999}, ObjectId{1}, "h").status().code(),
        StatusCode::kUnknownEvent);
    EXPECT_EQ(n0.events.attach_handler(sys::kInterrupt, "missing", OWN_CONTEXT)
                  .status()
                  .code(),
              StatusCode::kNoHandler);
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid).is_ok());
}

TEST(Events, PerThreadHandlerRunsAtDeliveryPoint) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<int> handled{0};
  cluster.procedures().register_procedure("count", [&](PerThreadCallCtx&) {
    handled++;
    return Verdict::kResume;
  });
  const EventId ev = cluster.registry().register_event("POKE");
  std::atomic<bool> attached{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events.attach_handler(ev, "count", OWN_CONTEXT).is_ok());
    attached = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!attached.load()) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(n0.events.raise(ev, tid).is_ok());
  for (int i = 0; i < 500 && handled.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(handled.load(), 1);
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid).is_ok());
  EXPECT_EQ(n0.events.stats().per_thread_procs_run, 1u);
}

TEST(Events, DetachedHandlerNoLongerRuns) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<int> handled{0};
  cluster.procedures().register_procedure("c2", [&](PerThreadCallCtx&) {
    handled++;
    return Verdict::kResume;
  });
  const EventId ev = cluster.registry().register_event("POKE2");
  std::atomic<bool> ready{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    auto id = n0.events.attach_handler(ev, "c2", OWN_CONTEXT);
    ASSERT_TRUE(id.is_ok());
    ASSERT_TRUE(n0.events.detach_handler(id.value()).is_ok());
    EXPECT_EQ(n0.events.detach_handler(id.value()).code(),
              StatusCode::kNoHandler);  // second detach fails
    ready = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!ready.load()) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(n0.events.raise(ev, tid).is_ok());
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(handled.load(), 0);  // default action for user events: ignore
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid).is_ok());
}

TEST(Events, LifoChainingMostRecentFirstAndPropagate) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::vector<std::string> order;
  std::mutex order_mu;
  cluster.procedures().register_procedure("first", [&](PerThreadCallCtx&) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back("first");
    return Verdict::kResume;  // stop here
  });
  cluster.procedures().register_procedure("second", [&](PerThreadCallCtx&) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back("second");
    return Verdict::kPropagate;  // pass outward
  });
  const EventId ev = cluster.registry().register_event("CHAINED");
  std::atomic<bool> ready{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events.attach_handler(ev, "first", OWN_CONTEXT).is_ok());
    ASSERT_TRUE(n0.events.attach_handler(ev, "second", OWN_CONTEXT).is_ok());
    ready = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!ready.load()) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(n0.events.raise(ev, tid).is_ok());
  for (int i = 0; i < 500; ++i) {
    std::lock_guard<std::mutex> lock(order_mu);
    if (order.size() >= 2) break;
    std::this_thread::sleep_for(1ms);
  }
  {
    std::lock_guard<std::mutex> lock(order_mu);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "second");  // most recently attached runs first
    EXPECT_EQ(order[1], "first");   // kPropagate walked outward
  }
  EXPECT_EQ(n0.events.stats().propagations, 1u);
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid).is_ok());
}

TEST(Events, UnknownEventRaiseRejected) {
  Cluster cluster(1);
  EXPECT_EQ(cluster.node(0).events.raise(EventId{9999}, ThreadId{1}).code(),
            StatusCode::kUnknownEvent);
}

TEST(Events, RaiseAtDeadThreadReportsDeadTarget) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ThreadId tid = n0.kernel.spawn([] {});
  ASSERT_TRUE(n0.kernel.join_thread(tid).is_ok());
  const EventId ev = cluster.registry().register_event("LATE");
  EXPECT_EQ(n0.events.raise(ev, tid).code(), StatusCode::kDeadTarget);
  EXPECT_EQ(n0.events.stats().dead_target_raises, 1u);
}

TEST(Events, DefaultTerminateAppliesWithoutHandler) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<bool> terminated{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    const Status s = n0.kernel.sleep_for(10s);
    terminated = s.code() == StatusCode::kTerminated;
  });
  // Wait for the thread to exist, then TERMINATE it (no handler attached).
  Status raised;
  for (int i = 0; i < 500; ++i) {
    raised = n0.events.raise(sys::kTerminate, tid);
    if (raised.is_ok()) break;
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(raised.is_ok()) << raised.to_string();
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_TRUE(terminated.load());
}

TEST(Events, HandlerOverridesDefaultTerminate) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<int> intercepted{0};
  cluster.procedures().register_procedure("shield", [&](PerThreadCallCtx&) {
    intercepted++;
    return Verdict::kResume;  // swallow the TERMINATE
  });
  std::atomic<bool> ready{false};
  std::atomic<bool> release{false};
  std::atomic<bool> survived{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(
        n0.events.attach_handler(sys::kTerminate, "shield", OWN_CONTEXT).is_ok());
    ready = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
    survived = true;
  });
  while (!ready.load()) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(n0.events.raise(sys::kTerminate, tid).is_ok());
  for (int i = 0; i < 500 && intercepted.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(intercepted.load(), 1);
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid).is_ok());
  EXPECT_TRUE(survived.load());
}

TEST(Events, ObjectEntryHandlerReceivesEventBlock) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<bool> saw_payload{false};
  ThreadId raiser_seen;

  auto obj = std::make_shared<objects::PassiveObject>("guarded");
  obj->define_entry(
      "on_interrupt",
      [&](objects::CallCtx& ctx) -> Result<objects::Payload> {
        EventBlock block = EventBlock::from_ctx(ctx);
        auto r = block.user_reader();
        saw_payload = r.get_string() == "ctrl-c";
        raiser_seen = block.raiser();
        return verdict_bytes(Verdict::kResume);
      },
      objects::Visibility::kPrivate);
  obj->define_entry("arm", [&](objects::CallCtx& ctx) -> Result<objects::Payload> {
    auto attached = n0.events.attach_handler(sys::kInterrupt, ctx.self,
                                             "on_interrupt");
    if (!attached.is_ok()) return attached.status();
    return objects::Payload{};
  });
  const ObjectId oid = n0.objects.add_object(obj);

  std::atomic<bool> ready{false};
  std::atomic<bool> release{false};
  ThreadId raiser_tid;
  const ThreadId tid = n0.kernel.spawn([&] {
    raiser_tid = kernel::Kernel::current()->tid();
    ASSERT_TRUE(n0.objects.invoke(oid, "arm", {}).is_ok());
    ready = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!ready.load()) std::this_thread::sleep_for(1ms);
  Writer w;
  w.put(std::string("ctrl-c"));
  ASSERT_TRUE(n0.events.raise(sys::kInterrupt, tid, std::move(w).take()).is_ok());
  for (int i = 0; i < 500 && !saw_payload.load(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(saw_payload.load());
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid).is_ok());
  EXPECT_EQ(n0.events.stats().thread_handlers_run, 1u);
}

TEST(Events, BuddyHandlerRunsOnRemoteServer) {
  // §4.1: "an application can specify a central server as the event handler
  // for events posted to its threads."
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  std::atomic<int> served{0};
  auto server = std::make_shared<objects::PassiveObject>("central_server");
  server->define_entry(
      "on_fault",
      [&](objects::CallCtx&) -> Result<objects::Payload> {
        served++;
        return verdict_bytes(Verdict::kResume);
      },
      objects::Visibility::kPrivate);
  const ObjectId server_id = n1.objects.add_object(server);

  std::atomic<bool> ready{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    // Buddy: the handler object is NOT the current object.
    ASSERT_TRUE(
        n0.events.attach_handler(sys::kVmFault, server_id, "on_fault").is_ok());
    const auto& chain = kernel::Kernel::current()->attributes().handler_chain;
    ASSERT_EQ(chain.size(), 1u);
    EXPECT_EQ(chain[0].kind, kernel::HandlerKind::kBuddy);
    ready = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!ready.load()) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(n0.events.raise(sys::kVmFault, tid).is_ok());
  for (int i = 0; i < 500 && served.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(served.load(), 1);
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid).is_ok());
}

TEST(Events, HandlerTravelsWithThreadAcrossNodes) {
  // Attach at node 0, then invoke an object on node 1 and receive the event
  // THERE: "these handlers remain active for the thread regardless of where
  // the thread is currently executing" (§3.2).
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  std::atomic<std::uint64_t> handled_at_node{0};
  cluster.procedures().register_procedure("where", [&](PerThreadCallCtx& ctx) {
    handled_at_node = ctx.thread.node().value();
    return Verdict::kResume;
  });
  const EventId ev = cluster.registry().register_event("WHERE");

  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  auto obj = std::make_shared<objects::PassiveObject>("remote_spin");
  obj->define_entry("spin", [&](objects::CallCtx& ctx) -> Result<objects::Payload> {
    entered = true;
    while (!release.load()) {
      if (!ctx.manager.kernel().sleep_for(1ms).is_ok()) break;
    }
    return objects::Payload{};
  });
  const ObjectId oid = n1.objects.add_object(obj);

  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events.attach_handler(ev, "where", OWN_CONTEXT).is_ok());
    ASSERT_TRUE(n0.objects.invoke(oid, "spin", {}).is_ok());
  });
  while (!entered.load()) std::this_thread::sleep_for(1ms);
  // The thread is now executing at node 1; raise from node 0.
  ASSERT_TRUE(n0.events.raise(ev, tid).is_ok());
  for (int i = 0; i < 500 && handled_at_node.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(handled_at_node.load(), n1.id.value());
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
}

TEST(Events, RaiseAndWaitReturnsHandlerVerdict) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  cluster.procedures().register_procedure("ack", [&](PerThreadCallCtx&) {
    return Verdict::kResume;
  });
  const EventId ev = cluster.registry().register_event("SYNC_PING");
  std::atomic<bool> ready{false};
  std::atomic<bool> release{false};
  const ThreadId target = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events.attach_handler(ev, "ack", OWN_CONTEXT).is_ok());
    ready = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!ready.load()) std::this_thread::sleep_for(1ms);

  std::atomic<bool> got_verdict{false};
  const ThreadId raiser = n0.kernel.spawn([&] {
    auto verdict = n0.events.raise_and_wait(ev, target);
    got_verdict = verdict.is_ok() && verdict.value() == Verdict::kResume;
    release = true;
  });
  ASSERT_TRUE(n0.kernel.join_thread(raiser, 15s).is_ok());
  ASSERT_TRUE(n0.kernel.join_thread(target, 10s).is_ok());
  EXPECT_TRUE(got_verdict.load());
}

TEST(Events, RaiseExceptionRunsChainOnSurrogate) {
  // §6.1 exception shape: the thread raises at itself, suspends, the chain
  // runs on a surrogate that can inspect the suspended thread, then resumes.
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<bool> surrogate_differs{false};
  std::atomic<std::uint64_t> observed_tid{0};
  cluster.procedures().register_procedure("repair", [&](PerThreadCallCtx& ctx) {
    // We are NOT running on the suspended thread's carrier.
    surrogate_differs = kernel::Kernel::current() != &ctx.thread;
    observed_tid = ctx.thread.tid().value();
    return Verdict::kResume;
  });
  std::atomic<bool> resumed{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events
                    .attach_handler(sys::kDivideByZero, "repair", OWN_CONTEXT)
                    .is_ok());
    auto verdict = n0.events.raise_exception(sys::kDivideByZero, "pc=0xdead");
    resumed = verdict.is_ok() && verdict.value() == Verdict::kResume;
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_TRUE(resumed.load());
  EXPECT_TRUE(surrogate_differs.load());
  EXPECT_EQ(observed_tid.load(), tid.value());
  EXPECT_EQ(n0.events.stats().surrogate_runs, 1u);
}

TEST(Events, RaiseExceptionTerminateVerdictTerminatesRaiser) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  cluster.procedures().register_procedure("fatal", [&](PerThreadCallCtx&) {
    return Verdict::kTerminate;
  });
  std::atomic<bool> after_terminated{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events
                    .attach_handler(sys::kDivideByZero, "fatal", OWN_CONTEXT)
                    .is_ok());
    auto verdict = n0.events.raise_exception(sys::kDivideByZero, "pc=0");
    after_terminated = verdict.is_ok() &&
                       verdict.value() == Verdict::kTerminate &&
                       kernel::Kernel::current()->terminated();
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_TRUE(after_terminated.load());
}

TEST(Events, GroupRaiseReachesAllMembersAcrossNodes) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  std::atomic<int> handled{0};
  cluster.procedures().register_procedure("gcount", [&](PerThreadCallCtx&) {
    handled++;
    return Verdict::kResume;
  });
  const EventId ev = cluster.registry().register_event("GROUP_POKE");
  const GroupId group = n0.kernel.create_group();
  kernel::SpawnOptions options;
  options.group = group;
  std::atomic<int> ready{0};
  std::atomic<bool> release{false};
  auto body = [&](runtime::NodeRuntime& node) {
    return [&]() {
      ASSERT_TRUE(node.events.attach_handler(ev, "gcount", OWN_CONTEXT).is_ok());
      ready++;
      while (!release.load()) {
        if (!node.kernel.sleep_for(1ms).is_ok()) return;
      }
    };
  };
  const ThreadId t0 = n0.kernel.spawn(body(n0), options);
  const ThreadId t1 = n1.kernel.spawn(body(n1), options);
  while (ready.load() < 2) std::this_thread::sleep_for(1ms);

  ASSERT_TRUE(n0.events.raise(ev, group).is_ok());
  for (int i = 0; i < 500 && handled.load() < 2; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(handled.load(), 2);
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(t0).is_ok());
  ASSERT_TRUE(n1.kernel.join_thread(t1).is_ok());
}

TEST(Events, ObjectEventRunsRegisteredHandler) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<int> handled{0};
  auto obj = std::make_shared<objects::PassiveObject>("my_object");
  obj->define_entry(
      "my_delete_handler",
      [&](objects::CallCtx&) -> Result<objects::Payload> {
        handled++;
        return objects::Payload{};
      },
      objects::Visibility::kPrivate);
  obj->define_handler("DELETE", "my_delete_handler");
  const ObjectId oid = n0.objects.add_object(obj);

  ASSERT_TRUE(n0.events.raise(sys::kDelete, oid).is_ok());
  for (int i = 0; i < 500 && handled.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(handled.load(), 1);
  EXPECT_EQ(n0.events.stats().object_handlers_run, 1u);
}

TEST(Events, ObjectDeleteDefaultRemovesObject) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId oid =
      n0.objects.add_object(std::make_shared<objects::PassiveObject>("gone"));
  ASSERT_TRUE(n0.events.raise(sys::kDelete, oid).is_ok());
  for (int i = 0; i < 500 && n0.objects.find(oid) != nullptr; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(n0.objects.find(oid), nullptr);
}

TEST(Events, ObjectEventFromRemoteNode) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  std::atomic<int> handled{0};
  auto obj = std::make_shared<objects::PassiveObject>("remote_target");
  obj->define_entry(
      "on_ping",
      [&](objects::CallCtx&) -> Result<objects::Payload> {
        handled++;
        return objects::Payload{};
      },
      objects::Visibility::kPrivate);
  obj->define_handler("PING", "on_ping");
  const ObjectId oid = n1.objects.add_object(obj);

  ASSERT_TRUE(n0.events.raise(sys::kPing, oid).is_ok());
  for (int i = 0; i < 500 && handled.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(handled.load(), 1);
}

TEST(Events, SyncObjectRaiseResumesWithHandlerVerdict) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  auto obj = std::make_shared<objects::PassiveObject>("sync_object");
  obj->define_entry(
      "on_commit",
      [&](objects::CallCtx&) -> Result<objects::Payload> {
        return verdict_bytes(Verdict::kResume);
      },
      objects::Visibility::kPrivate);
  obj->define_handler("COMMIT", "on_commit");
  const ObjectId oid = n0.objects.add_object(obj);
  const EventId commit = cluster.registry().register_event("COMMIT");

  auto verdict = n0.events.raise_and_wait(commit, oid);
  ASSERT_TRUE(verdict.is_ok()) << verdict.status().to_string();
  EXPECT_EQ(verdict.value(), Verdict::kResume);
}

TEST(Events, PassiveObjectActivatedOnEvent) {
  // §3.1/§4.3: events reach objects that exist only in the persistent store.
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<int>* counter = new std::atomic<int>{0};  // outlives factory copies
  n0.factory.register_type("sleeper", [counter, &n0] {
    auto obj = std::make_shared<objects::PassiveObject>("sleeper");
    obj->define_entry(
        "on_ping",
        [counter](objects::CallCtx&) -> Result<objects::Payload> {
          (*counter)++;
          return objects::Payload{};
        },
        objects::Visibility::kPrivate);
    obj->define_handler("PING", "on_ping");
    return obj;
  });
  n0.events.set_activation_hook(
      [&n0](ObjectId id) { return n0.store.activate(id); });

  auto made = n0.factory.make("sleeper");
  ASSERT_TRUE(made.is_ok());
  const ObjectId oid = n0.objects.add_object(made.value());
  ASSERT_TRUE(n0.store.deactivate(oid).is_ok());
  ASSERT_EQ(n0.objects.find(oid), nullptr);

  ASSERT_TRUE(n0.events.raise(sys::kPing, oid).is_ok());
  for (int i = 0; i < 500 && counter->load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(counter->load(), 1);
  EXPECT_NE(n0.objects.find(oid), nullptr);  // re-activated
  delete counter;
}

TEST(Events, ThreadPerEventDispatchMode) {
  runtime::ClusterConfig config;
  config.node.events.dispatch_mode = ObjectDispatchMode::kThreadPerEvent;
  Cluster cluster(1, config);
  auto& n0 = cluster.node(0);
  std::atomic<int> handled{0};
  auto obj = std::make_shared<objects::PassiveObject>("pte");
  obj->define_entry(
      "on_ping",
      [&](objects::CallCtx&) -> Result<objects::Payload> {
        handled++;
        return objects::Payload{};
      },
      objects::Visibility::kPrivate);
  obj->define_handler("PING", "on_ping");
  const ObjectId oid = n0.objects.add_object(obj);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(n0.events.raise(sys::kPing, oid).is_ok());
  }
  for (int i = 0; i < 500 && handled.load() < 8; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(handled.load(), 8);
}

// §5.3 table, all six rows exercised through one fixture.
class AddressingTableTest : public ::testing::Test {};

TEST_F(AddressingTableTest, AllSixRaiseShapes) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  std::atomic<int> thread_hits{0};
  cluster.procedures().register_procedure("t", [&](PerThreadCallCtx&) {
    thread_hits++;
    return Verdict::kResume;
  });
  const EventId ev = cluster.registry().register_event("TABLE_EVENT");

  std::atomic<int> object_hits{0};
  auto obj = std::make_shared<objects::PassiveObject>("table_object");
  obj->define_entry(
      "h",
      [&](objects::CallCtx&) -> Result<objects::Payload> {
        object_hits++;
        return verdict_bytes(Verdict::kResume);
      },
      objects::Visibility::kPrivate);
  obj->define_handler("TABLE_EVENT", "h");
  const ObjectId oid = n1.objects.add_object(obj);

  const GroupId group = n0.kernel.create_group();
  kernel::SpawnOptions options;
  options.group = group;
  std::atomic<int> ready{0};
  std::atomic<bool> release{false};
  auto member = [&](runtime::NodeRuntime& node) {
    return [&]() {
      ASSERT_TRUE(node.events.attach_handler(ev, "t", OWN_CONTEXT).is_ok());
      ready++;
      while (!release.load()) {
        if (!node.kernel.sleep_for(1ms).is_ok()) return;
      }
    };
  };
  const ThreadId t0 = n0.kernel.spawn(member(n0), options);
  const ThreadId t1 = n1.kernel.spawn(member(n1), options);
  while (ready.load() < 2) std::this_thread::sleep_for(1ms);

  // Row 1: raise(e, tid)
  ASSERT_TRUE(n0.events.raise(ev, t1).is_ok());
  // Row 2: raise(e, gtid)
  ASSERT_TRUE(n0.events.raise(ev, group).is_ok());
  // Row 3: raise(e, oid)
  ASSERT_TRUE(n0.events.raise(ev, oid).is_ok());
  // Rows 4-6: synchronous variants, raised from a logical thread.
  std::atomic<int> sync_ok{0};
  const ThreadId raiser = n0.kernel.spawn([&] {
    if (n0.events.raise_and_wait(ev, t1).is_ok()) sync_ok++;
    if (n0.events.raise_and_wait(ev, group).is_ok()) sync_ok++;
    if (n0.events.raise_and_wait(ev, oid).is_ok()) sync_ok++;
  });
  ASSERT_TRUE(n0.kernel.join_thread(raiser, 30s).is_ok());
  EXPECT_EQ(sync_ok.load(), 3);
  // thread hits: row1(1) + row2(2) + row4(1) + row5(>=1, first resumer wins
  // but both members still handle) = 2
  for (int i = 0; i < 500 && thread_hits.load() < 6; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(thread_hits.load(), 6);  // 1 + 2 + 1 + 2
  EXPECT_EQ(object_hits.load(), 2);  // row 3 + row 6
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(t0).is_ok());
  ASSERT_TRUE(n1.kernel.join_thread(t1).is_ok());
}

}  // namespace
}  // namespace doct::events
