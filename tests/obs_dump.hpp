// Opt-in observability dump for the chaos/stress suites: when the
// DOCT_OBS_DUMP environment variable names a directory, the whole binary
// runs with metrics + tracing enabled and writes metrics.json plus
// trace.json (Chrome trace-event format) there on teardown.  CI uploads the
// directory as an artifact when a seeded run fails, so a red chaos lane
// comes with the cluster's counters and the causal spans of its last
// ~65k events attached.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace doct::testsupport {

class ObsDumpEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    // Arm the flight recorder when DOCT_FLIGHT_DIR is set (independent of
    // the metrics/trace dump), so a crashing chaos/stress process leaves its
    // ring in the CI artifact.  The pid labels the dump file: ctest runs
    // each case as its own process against the shared directory.
    if (obs::flight().configure_from_env(
            static_cast<std::uint64_t>(::getpid()))) {
      obs::install_crash_handlers();
    }
    const char* dir = std::getenv("DOCT_OBS_DUMP");
    if (dir == nullptr || *dir == '\0') return;
    dir_ = dir;
    obs::set_metrics_enabled(true);
    obs::set_tracing_enabled(true);
  }

  void TearDown() override {
    if (dir_.empty()) return;
    // ctest runs each gtest case as its own process against the same dump
    // directory; the pid keeps dumps from clobbering each other.
    const std::string tag = std::to_string(::getpid());
    write(dir_ + "/metrics-" + tag + ".json", obs::metrics().snapshot_json());
    write(dir_ + "/trace-" + tag + ".json", obs::tracer().to_chrome_json());
  }

 private:
  static void write(const std::string& path, const std::string& body) {
    std::ofstream out(path, std::ios::trunc);
    if (out) out << body;
  }

  std::string dir_;
};

// Header-inline registration: each binary that includes this header gets the
// environment exactly once.
inline const auto* const kObsDumpEnvironment =
    ::testing::AddGlobalTestEnvironment(new ObsDumpEnvironment);

}  // namespace doct::testsupport
