// Services tests: distributed lock manager with TERMINATE-chained unlock
// (§4.2), the distributed ^C termination recipe (§6.3), liveliness
// monitoring (§6.2), user-level pagers (§6.4), and two-level exception
// dispatch (§6.1).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "runtime/runtime.hpp"
#include "services/exceptions/exceptions.hpp"
#include "services/locks/lock_manager.hpp"
#include "services/monitor/monitor.hpp"
#include "services/pager/pager.hpp"
#include "services/termination/termination.hpp"

namespace doct::services {
namespace {

using namespace std::chrono_literals;
using kernel::Verdict;
using runtime::Cluster;

// --- locks (§4.2) ---------------------------------------------------------------

TEST(Locks, AcquireReleaseAndHolder) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId server = n0.objects.add_object(LockServer::make());
  LockClient client(n0.events, n0.objects, server);

  std::atomic<bool> ok{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(client.acquire("resource_a").is_ok());
    auto holder = client.holder("resource_a");
    ASSERT_TRUE(holder.is_ok());
    EXPECT_EQ(holder.value(), kernel::Kernel::current()->tid());
    ASSERT_TRUE(client.release("resource_a").is_ok());
    holder = client.holder("resource_a");
    ok = holder.is_ok() && !holder.value().valid();
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_TRUE(ok.load());
}

TEST(Locks, ReleaseWithoutHoldFails) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId server = n0.objects.add_object(LockServer::make());
  LockClient client(n0.events, n0.objects, server);
  std::atomic<bool> denied{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    denied =
        client.release("never_held").code() == StatusCode::kPermissionDenied;
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_TRUE(denied.load());
}

TEST(Locks, ContendedLockWaitsForRelease) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId server = n0.objects.add_object(LockServer::make());
  LockClient client(n0.events, n0.objects, server);

  std::atomic<bool> first_has_it{false};
  std::atomic<bool> release_now{false};
  std::atomic<bool> second_got_it{false};

  const ThreadId t1 = n0.kernel.spawn([&] {
    ASSERT_TRUE(client.acquire("hot").is_ok());
    first_has_it = true;
    while (!release_now.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
    ASSERT_TRUE(client.release("hot").is_ok());
  });
  while (!first_has_it.load()) std::this_thread::sleep_for(1ms);

  const ThreadId t2 = n0.kernel.spawn([&] {
    second_got_it = client.acquire("hot", 5s).is_ok();
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(second_got_it.load());  // still held by t1
  release_now = true;
  ASSERT_TRUE(n0.kernel.join_thread(t1, 10s).is_ok());
  ASSERT_TRUE(n0.kernel.join_thread(t2, 10s).is_ok());
  EXPECT_TRUE(second_got_it.load());
}

TEST(Locks, TerminateReleasesAllHeldLocks) {
  // The §4.2 headline: TERMINATE unlocks everything the thread held,
  // "regardless of their location and scope", via chained handlers.
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  const ObjectId server = n1.objects.add_object(LockServer::make());
  LockClient client(n0.events, n0.objects, server);

  std::atomic<bool> both_held{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(client.acquire("lock_x").is_ok());
    ASSERT_TRUE(client.acquire("lock_y").is_ok());
    // The chain now has two TERMINATE unlock handlers.
    EXPECT_EQ(kernel::Kernel::current()->with_attributes(
                  [](kernel::ThreadAttributes& a) {
                    return a.handler_chain.size();
                  }),
              2u);
    both_held = true;
    while (true) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;  // until terminated
    }
  });
  while (!both_held.load()) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(n0.events.raise(events::sys::kTerminate, tid).is_ok());
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());

  // Both locks must be free again (checked through a fresh thread).
  std::atomic<bool> freed{false};
  const ThreadId checker = n0.kernel.spawn([&] {
    auto x = client.holder("lock_x");
    auto y = client.holder("lock_y");
    freed = x.is_ok() && !x.value().valid() && y.is_ok() && !y.value().valid();
  });
  ASSERT_TRUE(n0.kernel.join_thread(checker, 10s).is_ok());
  EXPECT_TRUE(freed.load());
}

// --- termination: the distributed ^C (§6.3) ----------------------------------------

TEST(Termination, DistributedCtrlCKillsGroupAndCleansObjects) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  TerminationService svc0(n0.events);
  TerminationService svc1(n1.events);

  // An object on node 1 the app's threads occupy; armed for ABORT cleanup.
  std::atomic<int> cleanups{0};
  std::atomic<int> spinners{0};
  auto shared_obj = std::make_shared<objects::PassiveObject>("shared_service");
  shared_obj->define_entry("spin", [&](objects::CallCtx& ctx)
                                       -> Result<objects::Payload> {
    spinners++;
    while (true) {
      if (!ctx.manager.kernel().sleep_for(1ms).is_ok()) break;  // terminated
    }
    return objects::Payload{};
  });
  svc1.arm_object(*shared_obj, [&](ThreadId) { cleanups++; });
  const ObjectId oid = n1.objects.add_object(shared_obj);

  // Root thread arms itself, then spawns two children that invoke the
  // remote object and spin inside it.
  std::atomic<bool> armed{false};
  ThreadId root_tid;
  std::vector<ThreadId> children;
  std::mutex children_mu;
  const ThreadId root = n0.kernel.spawn([&] {
    root_tid = kernel::Kernel::current()->tid();
    ASSERT_TRUE(svc0.arm_current_thread().is_ok());
    for (int i = 0; i < 2; ++i) {
      const ThreadId child = n0.kernel.spawn([&] {
        (void)n0.objects.invoke(oid, "spin", {});  // returns when terminated
      });
      std::lock_guard<std::mutex> lock(children_mu);
      children.push_back(child);
    }
    armed = true;
    while (true) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;  // until TERMINATE
    }
  });
  while (!armed.load() || spinners.load() < 2) std::this_thread::sleep_for(1ms);

  // An UNRELATED thread (different group) inside the same shared object must
  // survive the application's termination (§3.1 sharability).
  std::atomic<bool> unrelated_alive{true};
  std::atomic<bool> stop_unrelated{false};
  const ThreadId unrelated = n1.kernel.spawn([&] {
    while (!stop_unrelated.load()) {
      if (!n1.kernel.sleep_for(1ms).is_ok()) {
        unrelated_alive = false;
        return;
      }
    }
  });

  // ^C.
  ASSERT_TRUE(svc0.request_termination(root_tid).is_ok());

  ASSERT_TRUE(n0.kernel.join_thread(root, 15s).is_ok());
  {
    std::lock_guard<std::mutex> lock(children_mu);
    for (ThreadId child : children) {
      ASSERT_TRUE(n0.kernel.join_thread(child, 15s).is_ok());
    }
  }
  // ABORT cleanups ran for the object on the children's invocation chains.
  for (int i = 0; i < 500 && cleanups.load() < 2; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(cleanups.load(), 2);

  EXPECT_TRUE(unrelated_alive.load());
  stop_unrelated = true;
  ASSERT_TRUE(n1.kernel.join_thread(unrelated, 10s).is_ok());
  EXPECT_TRUE(unrelated_alive.load());
}

TEST(Termination, QuitAloneTerminatesOnlyGroupMembers) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  TerminationService svc(n0.events);

  const GroupId group = n0.kernel.create_group();
  kernel::SpawnOptions options;
  options.group = group;
  std::atomic<int> ready{0};
  auto body = [&] {
    ASSERT_TRUE(svc.arm_current_thread().is_ok());
    ready++;
    while (true) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  };
  const ThreadId t1 = n0.kernel.spawn(body, options);
  const ThreadId t2 = n0.kernel.spawn(body, options);
  while (ready.load() < 2) std::this_thread::sleep_for(1ms);

  ASSERT_TRUE(n0.events.raise(events::sys::kQuit, group).is_ok());
  EXPECT_TRUE(n0.kernel.join_thread(t1, 10s).is_ok());
  EXPECT_TRUE(n0.kernel.join_thread(t2, 10s).is_ok());
}

// --- monitoring (§6.2) -------------------------------------------------------------

TEST(Monitor, SamplesThreadAcrossNodes) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  const ObjectId server = n0.objects.add_object(MonitorServer::make());
  MonitorClient client(n0.events, n0.objects, server);

  std::atomic<bool> done{false};
  auto remote_obj = std::make_shared<objects::PassiveObject>("workload");
  remote_obj->define_entry("phase2", [&](objects::CallCtx& ctx)
                                         -> Result<objects::Payload> {
    set_pc_marker("phase2");
    // Dwell at node 1 long enough for several samples.
    for (int i = 0; i < 30; ++i) {
      if (!ctx.manager.kernel().sleep_for(2ms).is_ok()) break;
    }
    return objects::Payload{};
  });
  const ObjectId remote_id = n1.objects.add_object(remote_obj);

  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(client.arm(3ms).is_ok());
    set_pc_marker("phase1");
    for (int i = 0; i < 10; ++i) {
      if (!n0.kernel.sleep_for(2ms).is_ok()) return;
    }
    ASSERT_TRUE(n0.objects.invoke(remote_id, "phase2", {}).is_ok());
    done = true;
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
  ASSERT_TRUE(done.load());

  // Samples must exist from both nodes (timer recreated on migration) and
  // carry the pc markers.
  auto report = n0.objects.invoke(server, "report", {});
  ASSERT_TRUE(report.is_ok());
  const auto samples = MonitorServer::decode_report(report.value());
  ASSERT_FALSE(samples.empty());
  bool saw_n0 = false, saw_n1 = false, saw_phase2 = false;
  for (const auto& s : samples) {
    EXPECT_EQ(s.thread, tid);
    if (s.node == n0.id.value()) saw_n0 = true;
    if (s.node == n1.id.value()) saw_n1 = true;
    if (s.pc == "phase2") saw_phase2 = true;
  }
  EXPECT_TRUE(saw_n0);
  EXPECT_TRUE(saw_n1);
  EXPECT_TRUE(saw_phase2);
}

TEST(Monitor, DisarmStopsSampling) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId server = n0.objects.add_object(MonitorServer::make());
  MonitorClient client(n0.events, n0.objects, server);

  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(client.arm(3ms).is_ok());
    for (int i = 0; i < 5; ++i) {
      if (!n0.kernel.sleep_for(3ms).is_ok()) return;
    }
    ASSERT_TRUE(client.disarm().is_ok());
    auto before = client.report();
    ASSERT_TRUE(before.is_ok());
    const auto count = before.value().size();
    for (int i = 0; i < 10; ++i) {
      if (!n0.kernel.sleep_for(3ms).is_ok()) return;
    }
    auto after = client.report();
    ASSERT_TRUE(after.is_ok());
    EXPECT_LE(after.value().size(), count + 1);  // at most one straggler
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
}

// --- external pager (§6.4) -----------------------------------------------------------

TEST(Pager, FaultSuppliesPageViaBuddyHandler) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);  // faulting node
  auto& n1 = cluster.node(1);  // pager server node

  const ObjectId server = n1.objects.add_object(PagerServer::make(n1.rpc));
  PagerClient client(n0.events, n0.objects, n0.dsm, n0.rpc);
  const SegmentId seg{500};
  ASSERT_TRUE(client.create_paged_segment(seg, 4, server).is_ok());

  std::atomic<bool> ok{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(client.arm_current_thread(server).is_ok());
    // First touch: VM_FAULT -> buddy handler -> server installs zeros.
    auto data = n0.dsm.read(seg, 0, 16);
    ASSERT_TRUE(data.is_ok()) << data.status().to_string();
    ok = data.value() == std::vector<std::uint8_t>(16, 0);
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
  EXPECT_TRUE(ok.load());
  EXPECT_GE(client.stats().faults_served, 1u);
  EXPECT_GE(client.stats().pages_installed, 1u);
}

TEST(Pager, WritebackPersistsAndSecondNodeSeesCopy) {
  // Two faulting nodes sharing one pager-backed segment: node 0 writes and
  // writes back; node 2 then faults and receives the merged copy.
  Cluster cluster(3);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  auto& n2 = cluster.node(2);

  const ObjectId server = n1.objects.add_object(PagerServer::make(n1.rpc));
  PagerClient client0(n0.events, n0.objects, n0.dsm, n0.rpc);
  PagerClient client2(n2.events, n2.objects, n2.dsm, n2.rpc);
  const SegmentId seg{501};
  ASSERT_TRUE(client0.create_paged_segment(seg, 2, server).is_ok());
  ASSERT_TRUE(client2.create_paged_segment(seg, 2, server).is_ok());

  const ThreadId writer = n0.kernel.spawn([&] {
    ASSERT_TRUE(client0.arm_current_thread(server).is_ok());
    std::vector<std::uint8_t> data{7, 7, 7, 7};
    ASSERT_TRUE(n0.dsm.write(seg, 0, data).is_ok());
    ASSERT_TRUE(client0.writeback(seg, 0, server).is_ok());
  });
  ASSERT_TRUE(n0.kernel.join_thread(writer, 15s).is_ok());

  std::atomic<bool> ok{false};
  const ThreadId reader = n2.kernel.spawn([&] {
    ASSERT_TRUE(client2.arm_current_thread(server).is_ok());
    auto data = n2.dsm.read(seg, 0, 4);
    ASSERT_TRUE(data.is_ok()) << data.status().to_string();
    ok = data.value() == std::vector<std::uint8_t>({7, 7, 7, 7});
  });
  ASSERT_TRUE(n2.kernel.join_thread(reader, 15s).is_ok());
  EXPECT_TRUE(ok.load());
}

TEST(Pager, FallbackFetchWithoutLogicalThread) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId server = n0.objects.add_object(PagerServer::make(n0.rpc));
  PagerClient client(n0.events, n0.objects, n0.dsm, n0.rpc);
  const SegmentId seg{502};
  ASSERT_TRUE(client.create_paged_segment(seg, 1, server).is_ok());
  // Plain (non-logical) thread: the fallback fetch path.
  auto data = n0.dsm.read(seg, 0, 8);
  ASSERT_TRUE(data.is_ok()) << data.status().to_string();
  EXPECT_EQ(data.value(), std::vector<std::uint8_t>(8, 0));
}

// --- exceptions (§6.1) ----------------------------------------------------------------

TEST(Exceptions, ObjectHandlerRepairsFirst) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  ExceptionFacility facility(n0.events);

  std::atomic<int> object_handled{0};
  auto obj = std::make_shared<objects::PassiveObject>("resilient");
  obj->define_entry(
      "fix",
      [&](objects::CallCtx&) -> Result<objects::Payload> {
        object_handled++;
        return objects::Payload{
            static_cast<std::uint8_t>(Verdict::kResume)};
      },
      objects::Visibility::kPrivate);
  obj->define_handler("DIVIDE_BY_ZERO", "fix");
  const ObjectId oid = n0.objects.add_object(obj);

  std::atomic<bool> resumed{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    auto verdict =
        facility.raise(events::sys::kDivideByZero, oid, "pc=0x1234");
    resumed = verdict.is_ok() && verdict.value() == Verdict::kResume;
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
  EXPECT_TRUE(resumed.load());
  EXPECT_EQ(object_handled.load(), 1);
}

TEST(Exceptions, PropagatesToThreadHandlerWhenObjectDeclines) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  ExceptionFacility facility(n0.events);

  // Object declines (kPropagate).
  auto obj = std::make_shared<objects::PassiveObject>("declines");
  obj->define_entry(
      "decline",
      [&](objects::CallCtx&) -> Result<objects::Payload> {
        return objects::Payload{
            static_cast<std::uint8_t>(Verdict::kPropagate)};
      },
      objects::Visibility::kPrivate);
  obj->define_handler("DIVIDE_BY_ZERO", "decline");
  const ObjectId oid = n0.objects.add_object(obj);

  std::atomic<int> thread_handled{0};
  cluster.procedures().register_procedure("thread_fix",
                                          [&](events::PerThreadCallCtx&) {
                                            thread_handled++;
                                            return Verdict::kResume;
                                          });
  std::atomic<bool> resumed{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ScopedHandler guard(n0.events, events::sys::kDivideByZero, "thread_fix",
                        events::OWN_CONTEXT);
    ASSERT_TRUE(guard.attached());
    auto verdict = facility.raise(events::sys::kDivideByZero, oid, "pc=0x1");
    resumed = verdict.is_ok() && verdict.value() == Verdict::kResume;
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
  EXPECT_TRUE(resumed.load());
  EXPECT_EQ(thread_handled.load(), 1);
}

TEST(Exceptions, UnhandledExceptionTerminatesThread) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  ExceptionFacility facility(n0.events);
  const ObjectId oid = n0.objects.add_object(
      std::make_shared<objects::PassiveObject>("bare"));

  std::atomic<bool> terminated{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    auto verdict = facility.raise(events::sys::kDivideByZero, oid, "pc=0x2");
    terminated = verdict.is_ok() &&
                 verdict.value() == Verdict::kTerminate &&
                 kernel::Kernel::current()->terminated();
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
  EXPECT_TRUE(terminated.load());
}

TEST(Exceptions, ScopedHandlerDetachesOnExit) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  cluster.procedures().register_procedure(
      "noop", [](events::PerThreadCallCtx&) { return Verdict::kResume; });
  std::atomic<bool> ok{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    auto chain_size = [] {
      return kernel::Kernel::current()->with_attributes(
          [](kernel::ThreadAttributes& a) { return a.handler_chain.size(); });
    };
    EXPECT_EQ(chain_size(), 0u);
    {
      ScopedHandler guard(n0.events, events::sys::kInterrupt, "noop",
                          events::OWN_CONTEXT);
      EXPECT_EQ(chain_size(), 1u);
    }
    ok = chain_size() == 0;
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace doct::services
