// Seeded chaos suite: the acceptance scenarios for the deterministic
// fault-injection layer, runnable under any seed.
//
//   DOCT_CHAOS_SEED=42 ./tests/chaos_test
//
// The seed feeds the FaultPlan (which message is dropped/duplicated/delayed)
// and the RPC retry jitter.  The CI chaos lane runs this binary across a
// seed matrix; a failure prints the seed so the exact run replays locally.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs_dump.hpp"
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "runtime/runtime.hpp"
#include "services/locks/lock_manager.hpp"

namespace doct {
namespace {

using namespace std::chrono_literals;
using runtime::Cluster;
using runtime::ClusterConfig;

// Timing-sensitive exactly-once assertions are relaxed under sanitizers:
// instrumentation can stall the detector's beat thread past any reasonable
// suspicion threshold, which fakes (or swallows) a transition.  The fault
// decisions themselves stay fully deterministic either way.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

std::uint64_t chaos_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("DOCT_CHAOS_SEED");
    const std::uint64_t s =
        (env != nullptr && *env != '\0') ? std::strtoull(env, nullptr, 0) : 1;
    std::fprintf(stderr, "[chaos] DOCT_CHAOS_SEED=%llu\n",
                 static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

// --- 1. the full scenario ----------------------------------------------------
//
// Seeded drops + duplication + one partition/heal + one node crash/restart,
// with retried RPC traffic throughout.  Every call() must either succeed via
// retry or fail with a definite timeout; no method may execute twice for one
// call; NODE_DOWN fires exactly once for the crash; the network is quiescent
// at teardown.

TEST(Chaos, FullScenario) {
  const std::uint64_t seed = chaos_seed();
  ClusterConfig config;
  config.node.rpc.default_timeout = 3s;
  config.node.rpc.max_retries = 40;
  config.node.rpc.retry_base_delay = 10ms;
  config.node.rpc.retry_max_delay = 60ms;
  config.node.rpc.retry_seed = seed;
  config.node.health.enabled = true;
  config.node.health.heartbeat_interval = 25ms;
  // Far above the partition window below so the partition never produces a
  // spurious suspicion, and far below the crash outage so the real crash is
  // always detected.
  config.node.health.suspect_after = 800ms;
  Cluster cluster(3, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  auto& n2 = cluster.node(2);

  // NODE_DOWN / NODE_UP accounting, per peer, as seen from n0.
  std::mutex transitions_mu;
  std::map<NodeId, int> downs;
  std::map<NodeId, int> ups;
  n0.health()->on_node_down([&](NodeId peer) {
    std::lock_guard<std::mutex> lock(transitions_mu);
    downs[peer]++;
  });
  n0.health()->on_node_up([&](NodeId peer) {
    std::lock_guard<std::mutex> lock(transitions_mu);
    ups[peer]++;
  });

  // At-most-once accounting: each call carries a unique token; the CallId
  // reuse across retransmissions must keep every token's execution count at
  // one even though the wire duplicates and the client retransmits.
  struct ExecLog {
    std::mutex mu;
    std::set<std::uint64_t> seen;
    int duplicate_executions = 0;
  };
  ExecLog logs[2];
  auto install = [](runtime::NodeRuntime& node, ExecLog& log) {
    node.rpc.register_method(
        "work", [&log](NodeId, Reader& args) -> Result<rpc::Payload> {
          const auto token = args.get<std::uint64_t>();
          std::lock_guard<std::mutex> lock(log.mu);
          if (!log.seen.insert(token).second) log.duplicate_executions++;
          return rpc::Payload{};
        });
  };
  install(n1, logs[0]);
  install(n2, logs[1]);

  net::FaultPlan plan;
  plan.seed = seed;
  plan.link_defaults.drop_probability = 0.10;
  plan.link_defaults.duplicate_probability = 0.10;
  plan.link_defaults.delay_spike_probability = 0.05;
  plan.link_defaults.delay_spike_min = 500us;
  plan.link_defaults.delay_spike_max = 3ms;
  plan.partitions.push_back(net::PartitionEvent{
      .a = n0.id, .b = n1.id, .at = 300ms, .heal_at = 450ms});
  plan.crashes.push_back(
      net::CrashEvent{.node = n2.id, .at = 300ms, .restart_at = 2000ms});
  cluster.network().load_fault_plan(plan);

  std::atomic<std::uint64_t> next_token{1};
  std::atomic<int> ok{0};
  std::atomic<int> timeouts{0};
  std::atomic<int> other_failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 24; ++i) {
        const NodeId target = (i % 2 == 0) ? n1.id : n2.id;
        Writer w;
        w.put(next_token.fetch_add(1));
        auto result = n0.rpc.call(target, "work", std::move(w).take());
        if (result.is_ok()) {
          ok++;
        } else if (result.status().code() == StatusCode::kTimeout) {
          timeouts++;
        } else {
          other_failures++;
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  // Every outcome is definite: success or timeout, nothing else.
  EXPECT_EQ(other_failures.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(n0.rpc.stats().retries_sent, 0u);

  // Zero duplicate method executions despite duplication + retransmission.
  EXPECT_EQ(logs[0].duplicate_executions, 0);
  EXPECT_EQ(logs[1].duplicate_executions, 0);

  // The crash/restart must have fired, and the detector must have seen it.
  // The schedule runs on wall-clock time, so a fast client phase can finish
  // before 300ms; wait on the monotonic restart counter (the transient
  // crashed state itself can be missed entirely) while heartbeats keep
  // traffic flowing through the partition and outage windows.
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (cluster.network().stats().restarts == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  while (cluster.network().is_crashed(n2.id) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_FALSE(cluster.network().is_crashed(n2.id));
  if (!kSanitized) {
    auto transitions_settled = [&] {
      std::lock_guard<std::mutex> lock(transitions_mu);
      return downs[n2.id] >= 1 && ups[n2.id] >= downs[n2.id];
    };
    while (!transitions_settled() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(5ms);
    }
    std::lock_guard<std::mutex> lock(transitions_mu);
    EXPECT_EQ(downs[n2.id], 1);  // exactly once per crash
    EXPECT_EQ(ups[n2.id], 1);    // exactly once per restart
    EXPECT_EQ(downs[n1.id], 0);  // the 150ms partition is no crash
  }

  // Seeded faults actually happened.
  const auto stats = cluster.network().stats();
  EXPECT_GT(stats.dropped_by_fault, 0u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.dropped_by_partition, 0u);
  EXPECT_GT(stats.dropped_crashed, 0u);
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.restarts, 1u);

  // In-flight quiescence at teardown.
  cluster.network().quiesce();
  EXPECT_EQ(cluster.network().in_flight(), 0);
}

// --- 2. determinism ----------------------------------------------------------
//
// The injector's guarantee: fault fates are a pure function of (seed, stream,
// per-stream sequence).  The same seed over the same traffic sequence must
// reproduce the identical NetworkStats fault counts, run after run.

TEST(Chaos, SameSeedIdenticalFaultCounts) {
  const std::uint64_t seed = chaos_seed();
  auto run = [seed] {
    net::Network net;
    net::FaultPlan plan;
    plan.seed = seed;
    plan.link_defaults.drop_probability = 0.20;
    plan.link_defaults.duplicate_probability = 0.15;
    plan.link_defaults.reorder_probability = 0.10;
    plan.link_defaults.delay_spike_probability = 0.10;
    plan.link_defaults.delay_spike_min = 100us;
    plan.link_defaults.delay_spike_max = 2ms;
    net.load_fault_plan(plan);
    for (std::uint64_t id = 1; id <= 4; ++id) {
      EXPECT_TRUE(
          net.register_node(NodeId{id}, [](const net::Message&) {}).is_ok());
    }
    auto msg = [](std::uint64_t from, std::uint64_t to) {
      return net::Message{.from = NodeId{from},
                          .to = NodeId{to},
                          .kind = 7,
                          .call = CallId{},
                          .payload = {}};
    };
    for (int i = 0; i < 300; ++i) {
      EXPECT_TRUE(net.send(msg(1, 2)).is_ok());
      EXPECT_TRUE(net.send(msg(2, 3)).is_ok());
      if (i % 10 == 0) EXPECT_TRUE(net.broadcast(msg(4, 0)).is_ok());
    }
    net.quiesce();
    const auto stats = net.stats();
    return std::make_tuple(stats.dropped_by_fault, stats.duplicated,
                           stats.reordered, stats.delay_spikes,
                           stats.delivered);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(std::get<0>(first), 0u);
  EXPECT_GT(std::get<1>(first), 0u);
  EXPECT_GT(std::get<2>(first), 0u);
  EXPECT_GT(std::get<3>(first), 0u);
}

// --- 2b. cached delivery under seeded faults ---------------------------------
//
// The thread-location cache rides the same raise path the chaos lane beats
// on: hinted deliveries must survive seeded drops/duplicates (RPC retries
// disprove stale hints, the fallback locator recovers), and the fault
// determinism guarantee must hold with the cache in play.

TEST(Chaos, CachedDeliverySurvivesSeededFaults) {
  const std::uint64_t seed = chaos_seed();
  ClusterConfig config;
  config.node.rpc.default_timeout = 2s;
  config.node.rpc.max_retries = 4;
  config.node.rpc.retry_base_delay = 10ms;
  config.node.kernel.locate_timeout = 1s;
  Cluster cluster(3, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  auto& n2 = cluster.node(2);

  std::atomic<bool> release{false};
  auto parked = [&release](runtime::NodeRuntime& node) {
    return [&release, &node] {
      while (!release.load()) {
        if (!node.kernel.sleep_for(1ms).is_ok()) return;
      }
    };
  };
  const ThreadId on_n1 = n1.kernel.spawn(parked(n1));
  const ThreadId on_n2 = n2.kernel.spawn(parked(n2));

  // Warm n0's cache before the faults arm.
  ASSERT_EQ(n0.kernel.locate(on_n1).value(), n1.id);
  ASSERT_EQ(n0.kernel.locate(on_n2).value(), n2.id);
  EXPECT_GE(n0.kernel.location_cache().stats().inserts, 2u);

  net::FaultPlan plan;
  plan.seed = seed;
  plan.link_defaults.drop_probability = 0.15;
  plan.link_defaults.duplicate_probability = 0.10;
  plan.link_defaults.delay_spike_probability = 0.10;
  plan.link_defaults.delay_spike_min = 100us;
  plan.link_defaults.delay_spike_max = 1ms;
  cluster.network().load_fault_plan(plan);

  // Terminate both parked threads through the lossy fabric.  Each raise may
  // ride the hint or re-locate after a refused retry; either way it must
  // land within the deadline.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  for (const auto& [tid, home] :
       {std::pair{on_n1, &n1}, std::pair{on_n2, &n2}}) {
    Status status{StatusCode::kInternal, "unsent"};
    while (std::chrono::steady_clock::now() < deadline) {
      status = n0.events.raise(events::sys::kTerminate, tid);
      if (status.is_ok() && home->kernel.join_thread(tid, 2s).is_ok()) break;
    }
    EXPECT_TRUE(status.is_ok()) << status.to_string();
  }
  release = true;

  // The two raises alone are too little traffic to guarantee a seeded drop
  // under every seed; pump enough datagrams that the armed plan must bite.
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(cluster.network()
                    .send(net::Message{.from = n0.id,
                                       .to = n1.id,
                                       .kind = 0x7E57,
                                       .call = CallId{},
                                       .payload = {}})
                    .is_ok());
  }
  EXPECT_GT(cluster.network().stats().dropped_by_fault, 0u);
  cluster.network().quiesce();
  EXPECT_EQ(cluster.network().in_flight(), 0);
}

// --- 3. orphaned-lock cleanup on holder crash --------------------------------
//
// The holder's TERMINATE chain lives on the crashed node and can never run;
// the lock server's NODE_DOWN handler must free the lock instead.

TEST(Chaos, LockCleanupOnHolderCrash) {
  ClusterConfig config;
  config.node.rpc.default_timeout = 2s;
  config.node.health.enabled = true;
  config.node.health.heartbeat_interval = 20ms;
  config.node.health.suspect_after = 300ms;
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  const ObjectId server = n0.objects.add_object(services::LockServer::make());
  n0.health()->subscribe(server);
  services::LockClient client0(n0.events, n0.objects, server);
  services::LockClient client1(n1.events, n1.objects, server);

  std::atomic<bool> acquired{false};
  const ThreadId holder = n1.kernel.spawn([&] {
    ASSERT_TRUE(client1.acquire("chaos_lock", 5s).is_ok());
    acquired = true;
    while (n1.kernel.sleep_for(1ms).is_ok()) {
    }
  });
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (!acquired.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(acquired.load());

  ASSERT_TRUE(cluster.network().crash_node(n1.id).is_ok());

  // NODE_DOWN at the subscribed lock server must free the orphaned lock.
  auto lock_free = [&] {
    auto result = client0.holder("chaos_lock");
    return result.is_ok() && !result.value().valid();
  };
  while (!lock_free() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(lock_free());
  if (!kSanitized) {
    EXPECT_EQ(n0.health()->stats().node_down_raised, 1u);
  }

  // Restart and terminate the stranded holder cleanly: its chained unlock
  // handler finds the lock already freed and must stay a no-op.
  ASSERT_TRUE(cluster.network().restart_node(n1.id).is_ok());
  ASSERT_TRUE(n1.events.raise(events::sys::kTerminate, holder).is_ok());
  ASSERT_TRUE(n1.kernel.join_thread(holder, 15s).is_ok());
  EXPECT_TRUE(lock_free());
  cluster.network().quiesce();
  EXPECT_EQ(cluster.network().in_flight(), 0);
}

// --- 4. TERMINATE-chain unlock across a partition ----------------------------
//
// §4.2's chained unlock fires while the link to the lock server is cut; the
// retry layer must carry the unlock across the heal so the chain completes
// instead of leaking the lock.

TEST(Chaos, TerminateChainUnlockBridgesPartition) {
  const std::uint64_t seed = chaos_seed();
  ClusterConfig config;
  config.node.rpc.default_timeout = 5s;
  config.node.rpc.max_retries = 40;
  config.node.rpc.retry_base_delay = 10ms;
  config.node.rpc.retry_max_delay = 50ms;
  config.node.rpc.retry_seed = seed;
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  const ObjectId server = n0.objects.add_object(services::LockServer::make());
  services::LockClient client0(n0.events, n0.objects, server);
  services::LockClient client1(n1.events, n1.objects, server);

  std::atomic<bool> acquired{false};
  const ThreadId holder = n1.kernel.spawn([&] {
    ASSERT_TRUE(client1.acquire("chaos_lock", 5s).is_ok());
    acquired = true;
    while (n1.kernel.sleep_for(1ms).is_ok()) {
    }
  });
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (!acquired.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(acquired.load());

  // Cut the link now (plus seeded background loss), healing after 250ms;
  // then TERMINATE the holder while the server is unreachable.
  net::FaultPlan plan;
  plan.seed = seed;
  plan.link_defaults.drop_probability = 0.05;
  plan.partitions.push_back(net::PartitionEvent{
      .a = n0.id, .b = n1.id, .at = Duration{0}, .heal_at = 250ms});
  cluster.network().load_fault_plan(plan);

  ASSERT_TRUE(n1.events.raise(events::sys::kTerminate, holder).is_ok());
  ASSERT_TRUE(n1.kernel.join_thread(holder, 15s).is_ok());

  auto lock_free = [&] {
    auto result = client0.holder("chaos_lock");
    return result.is_ok() && !result.value().valid();
  };
  while (!lock_free() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(lock_free());
  EXPECT_GT(cluster.network().stats().dropped_by_partition, 0u);
  cluster.network().quiesce();
  EXPECT_EQ(cluster.network().in_flight(), 0);
}

// --- 5. multicast locator vs. a crashed member -------------------------------
//
// §7.1's sophisticated locator multicasts to the nodes a thread has visited.
// A crashed member must neither break locating a live thread (the live host
// still answers) nor turn locating a thread stranded on the dead node into
// anything but a definite, bounded failure.

TEST(Chaos, MulticastLocatorSurvivesMemberCrash) {
  ClusterConfig config;
  config.node.kernel.locate_timeout = 400ms;
  config.node.rpc.default_timeout = 2s;
  Cluster cluster(3, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  auto& n2 = cluster.node(2);

  std::atomic<bool> release{false};
  auto parked = [&release](runtime::NodeRuntime& node) {
    return [&release, &node] {
      while (!release.load()) {
        if (!node.kernel.sleep_for(1ms).is_ok()) return;
      }
    };
  };
  const ThreadId on_n1 = n1.kernel.spawn(parked(n1));
  const ThreadId on_n2 = n2.kernel.spawn(parked(n2));

  // Both threads locatable before any fault.
  ASSERT_EQ(n0.kernel.locate(on_n1, kernel::LocatorKind::kMulticast).value(),
            n1.id);
  ASSERT_EQ(n0.kernel.locate(on_n2, kernel::LocatorKind::kMulticast).value(),
            n2.id);

  // Make n2 a (stale) member of on_n1's locate group, as if the thread had
  // once visited n2.  The group id mirrors Kernel::thread_multicast_group's
  // reserved-range scheme.
  const GroupId n1_thread_group{0x8000000000000000ULL ^ on_n1.value()};
  ASSERT_TRUE(cluster.network().join(n1_thread_group, n2.id).is_ok());

  ASSERT_TRUE(cluster.network().crash_node(n2.id).is_ok());

  // Live thread: the dead member's probe leg is silently lost, the live
  // host's reply still lands.
  auto located = n0.kernel.locate(on_n1, kernel::LocatorKind::kMulticast);
  ASSERT_TRUE(located.is_ok()) << located.status().to_string();
  EXPECT_EQ(located.value(), n1.id);

  // Stranded thread: a definite, bounded miss — not a hang, not a crash.
  const auto start = std::chrono::steady_clock::now();
  auto stranded = n0.kernel.locate(on_n2, kernel::LocatorKind::kMulticast);
  EXPECT_FALSE(stranded.is_ok());
  EXPECT_EQ(stranded.status().code(), StatusCode::kNoSuchThread);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);

  // After restart the stranded thread (which never stopped running on its
  // kernel) is locatable again: group membership survived the crash.
  ASSERT_TRUE(cluster.network().restart_node(n2.id).is_ok());
  auto recovered = n0.kernel.locate(on_n2, kernel::LocatorKind::kMulticast);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(recovered.value(), n2.id);

  release = true;
  ASSERT_TRUE(n1.kernel.join_thread(on_n1, 15s).is_ok());
  ASSERT_TRUE(n2.kernel.join_thread(on_n2, 15s).is_ok());
  cluster.network().quiesce();
  EXPECT_EQ(cluster.network().in_flight(), 0);
}

}  // namespace
}  // namespace doct
