// doct-top — live telemetry view of a running doct cluster.
//
//   doct-top --connect=<addr> [--coordinator=<id>] [--self=<id>]
//            [--listen=<addr>] [--once | --watch=<ms>] [--json]
//
// Attaches to the cluster's collector node (the coordinator in doct-node
// deployments) as an OBSERVER: a socket-transport endpoint that is not a
// member of the cluster mesh.  The HELLO frame carries our listen address,
// so the coordinator auto-adds us as a peer and RPC replies find their way
// back — no pre-provisioning on the cluster side.
//
// Every refresh pulls the merged cluster snapshot over the chunked
// "obs.cluster_at" RPC and renders one row per node: live lane depths,
// claimed reservation keys, shed/coalesce counts, kernel delivery rate, RPC
// retries, and p99s for reservation waits / RPC calls / event handling.
// Rates and deltas are computed by the cluster's collector, not here; this
// tool is a pure view.
//
// Exit codes: 0 ok, 1 fetch/parse failure, 2 usage.
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/id_gen.hpp"
#include "common/serialize.hpp"
#include "net/demux.hpp"
#include "net/socket_transport.hpp"
#include "obs/collector.hpp"
#include "rpc/rpc.hpp"

using namespace doct;
using namespace std::chrono_literals;

namespace {

// Default observer id: far outside any real cluster's node range (so the
// collector's member cap and failure detector never confuse us with a
// shard), and pid-unique — the cluster side's peer table is first-write-wins
// on addresses, so successive attaches must not reuse an id.
std::uint64_t default_self() {
  return 913'000'000 + static_cast<std::uint64_t>(::getpid());
}

struct Options {
  std::string connect;
  NodeId coordinator{1};
  NodeId self{default_self()};
  std::string listen;
  bool json = false;
  // watch_ms == 0 → --once (single snapshot).
  std::uint64_t watch_ms = 0;
};

bool parse_args(int argc, char** argv, Options& opt) {
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--connect=")) {
      opt.connect = v;
    } else if (const char* v = value("--coordinator=")) {
      opt.coordinator = NodeId{std::strtoull(v, nullptr, 10)};
    } else if (const char* v = value("--self=")) {
      opt.self = NodeId{std::strtoull(v, nullptr, 10)};
    } else if (const char* v = value("--listen=")) {
      opt.listen = v;
    } else if (const char* v = value("--watch=")) {
      opt.watch_ms = std::strtoull(v, nullptr, 10);
      if (opt.watch_ms == 0) return false;
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  if (once && opt.watch_ms != 0) return false;
  return !opt.connect.empty() && opt.self.valid() && opt.coordinator.valid();
}

// Pulls the whole cluster document through the chunked protocol: request
// {u64 offset}, reply {u64 total, str chunk}; offset 0 makes the collector
// re-render so one fetch sees one consistent snapshot.
Result<std::string> fetch_cluster(rpc::RpcEndpoint& rpc, NodeId coordinator) {
  std::string assembled;
  while (true) {
    Writer w;
    w.put(static_cast<std::uint64_t>(assembled.size()));
    auto reply =
        rpc.call(coordinator, "obs.cluster_at", std::move(w).take(), 5s);
    if (!reply.is_ok()) return reply.status();
    Reader r(std::move(reply).value());
    const auto total = r.get<std::uint64_t>();
    const std::string chunk = r.get_string();
    assembled += chunk;
    if (assembled.size() >= total) return assembled;
    if (chunk.empty()) {
      return Status(StatusCode::kInternal, "truncated cluster fetch");
    }
  }
}

double section_num(const obs::JsonValue& row, const char* section,
                   const char* name) {
  const obs::JsonValue* s = row.find(section);
  return s == nullptr ? 0.0 : s->num_or(name, 0.0);
}

double histo_p99(const obs::JsonValue& row, const char* name) {
  const obs::JsonValue* histograms = row.find("histograms");
  if (histograms == nullptr) return 0.0;
  const obs::JsonValue* h = histograms->find(name);
  return h == nullptr ? 0.0 : h->num_or("p99", 0.0);
}

std::string fmt_count(double v) {
  std::ostringstream out;
  out << static_cast<long long>(v);
  return out.str();
}

std::string fmt_us(double v) {
  std::ostringstream out;
  if (v >= 1000.0) {
    out << std::fixed << std::setprecision(1) << v / 1000.0 << "ms";
  } else {
    out << static_cast<long long>(v) << "us";
  }
  return out.str();
}

std::string fmt_rate(double v) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(v >= 100 ? 0 : 1) << v;
  return out.str();
}

// One row per node:
//   NODE UP(s) | CTL EVT BLK CLAIM | SHED COAL | DLV/s RETRY |
//   RSV-P99 RPC-P99 EVT-P99
int render_table(const std::string& doc) {
  auto parsed = obs::parse_json(doc);
  if (!parsed.is_ok()) {
    std::cerr << "doct-top: bad cluster document: "
              << parsed.status().to_string() << "\n";
    return 1;
  }
  const obs::JsonValue& root = parsed.value();
  const obs::JsonValue* nodes = root.find("nodes");
  if (nodes == nullptr || nodes->object.empty()) {
    std::cerr << "doct-top: no nodes in cluster snapshot\n";
    return 1;
  }

  // std::map<std::string,...> sorts "10" before "2"; re-key numerically.
  std::map<std::uint64_t, const obs::JsonValue*> rows;
  for (const auto& [key, value] : nodes->object) {
    rows[std::strtoull(key.c_str(), nullptr, 10)] = &value;
  }

  std::ostringstream out;
  out << std::left << std::setw(6) << "NODE" << std::right << std::setw(7)
      << "UP(s)" << std::setw(6) << "CTL" << std::setw(6) << "EVT"
      << std::setw(6) << "BLK" << std::setw(7) << "CLAIM" << std::setw(7)
      << "SHED" << std::setw(7) << "COAL" << std::setw(9) << "DLV/s"
      << std::setw(7) << "RETRY" << std::setw(10) << "RSV-P99" << std::setw(10)
      << "RPC-P99" << std::setw(10) << "EVT-P99" << "\n";
  for (const auto& [node, row] : rows) {
    const double coalesced = section_num(*row, "counters",
                                         "exec.control_coalesced") +
                             section_num(*row, "counters",
                                         "exec.event_coalesced") +
                             section_num(*row, "counters",
                                         "exec.bulk_coalesced");
    out << std::left << std::setw(6) << node << std::right << std::setw(7)
        << fmt_count(row->num_or("uptime_us", 0.0) / 1e6) << std::setw(6)
        << fmt_count(section_num(*row, "counters", "exec.control_depth"))
        << std::setw(6)
        << fmt_count(section_num(*row, "counters", "exec.event_depth"))
        << std::setw(6)
        << fmt_count(section_num(*row, "counters", "exec.bulk_depth"))
        << std::setw(7)
        << fmt_count(section_num(*row, "counters", "exec.reservation_claimed"))
        << std::setw(7)
        << fmt_count(section_num(*row, "counters", "exec.shed_total"))
        << std::setw(7) << fmt_count(coalesced) << std::setw(9)
        << fmt_rate(section_num(*row, "rates", "kernel.notices_delivered"))
        << std::setw(7)
        << fmt_count(section_num(*row, "counters", "rpc.retries_sent"))
        << std::setw(10) << fmt_us(histo_p99(*row,
                                             "exec.reservation_blocked_us"))
        << std::setw(10) << fmt_us(histo_p99(*row, "rpc.call_us"))
        << std::setw(10) << fmt_us(histo_p99(*row, "events.handle_us"))
        << "\n";
  }
  std::cout << out.str() << std::flush;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::cerr << "usage: doct-top --connect=<addr> [--coordinator=<id>] "
                 "[--self=<id>] [--listen=<addr>] [--once | --watch=<ms>] "
                 "[--json]\n";
    return 2;
  }
  if (opt.listen.empty()) {
    opt.listen = "unix:/tmp/doct-top-" + std::to_string(::getpid()) + ".sock";
  }

  net::SocketTransportConfig tc;
  tc.self = opt.self;
  tc.listen = opt.listen;
  tc.peers[opt.coordinator] = opt.connect;
  net::SocketTransport transport(tc);
  const Status started = transport.start();
  if (!started.is_ok()) {
    std::cerr << "doct-top: transport: " << started.to_string() << "\n";
    return 1;
  }

  net::Demux demux;
  // Cluster members broadcast heartbeats at every peer — including attached
  // observers.  Swallow them instead of warn-logging over the display.
  demux.route(net::kHeartbeat, [](const net::Message&) {});
  const Status registered =
      transport.register_node(opt.self, demux.as_handler());
  if (!registered.is_ok()) {
    std::cerr << "doct-top: register: " << registered.to_string() << "\n";
    return 1;
  }
  IdGenerator ids(opt.self.value() << 40);
  rpc::RpcEndpoint rpc(transport, demux, opt.self, ids);

  if (!transport.wait_for_peers(1, 10s)) {
    std::cerr << "doct-top: no connection to " << opt.connect << "\n";
    return 1;
  }

  while (true) {
    auto doc = fetch_cluster(rpc, opt.coordinator);
    if (!doc.is_ok()) {
      std::cerr << "doct-top: fetch: " << doc.status().to_string() << "\n";
      return 1;
    }
    int rc;
    if (opt.json) {
      std::cout << doc.value() << std::endl;
      rc = 0;
    } else {
      rc = render_table(doc.value());
    }
    if (opt.watch_ms == 0) return rc;
    std::cout << "\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.watch_ms));
  }
}
